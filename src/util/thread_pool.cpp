#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/env.h"

namespace cleaks {
namespace {

// Pool telemetry. Job counts are identical at every lane count (the same
// parallel_for calls happen either way: kSim); how many chunks exist and
// which lane executes them depends on the lane count and chunk claiming,
// so those are kRuntime.
obs::Counter& jobs_counter() {
  static obs::Counter& counter = obs::Registry::global().counter(
      "pool_parallel_for_total", "parallel_for invocations (incl. serial)");
  return counter;
}

obs::Counter& lane_chunks_counter() {
  static obs::Counter& counter = obs::Registry::global().lane_counter(
      "pool_lane_chunks_total", "chunks executed, by claiming lane");
  return counter;
}

}  // namespace

int ThreadPool::default_lanes() {
  // Non-numeric text falls through to hardware concurrency; numeric
  // values — including 0, negatives and absurd counts — are clamped to
  // [1, kMaxLanes] rather than fed straight to the pool.
  if (const auto parsed = env_long("CLEAKS_THREADS")) {
    return static_cast<int>(
        std::clamp(*parsed, 1L, static_cast<long>(kMaxLanes)));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? std::min(static_cast<int>(hw), kMaxLanes) : 1;
}

ThreadPool::ThreadPool(int lanes) {
  if (lanes <= 0) lanes = default_lanes();
  lanes = std::min(lanes, kMaxLanes);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i) {
    workers_.emplace_back([this, i] {
      tls_lane_ = i + 1;  // lane 0 is the caller
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::string& ThreadPool::scratch(std::size_t slot) {
  auto& lane = scratch_[static_cast<std::size_t>(current_lane())];
  while (lane.slots.size() <= slot) {
    lane.slots.push_back(std::make_unique<std::string>());
  }
  std::string& buffer = *lane.slots[slot];
  buffer.clear();  // capacity survives: the whole point of the pool
  return buffer;
}

void ThreadPool::parallel_for(std::size_t n, const ChunkBody& body) {
  if (n == 0) return;
  jobs_counter().inc();
  if (workers_.empty() || n == 1) {
    lane_chunks_counter().inc();
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(lanes()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_n_ = n;
    chunk_count_ = chunks;
    next_chunk_ = 0;
    unfinished_ = chunks;
  }
  work_cv_.notify_all();
  // The caller is a lane too: claim chunks until none are left.
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_chunk_ >= chunk_count_) break;
      chunk = next_chunk_++;
    }
    lane_chunks_counter().inc();
    body(job_n_ * chunk / chunk_count_, job_n_ * (chunk + 1) / chunk_count_);
    std::lock_guard<std::mutex> lock(mu_);
    --unfinished_;
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::size_t chunk;
    const ChunkBody* body;
    std::size_t n;
    std::size_t chunks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (body_ != nullptr && next_chunk_ < chunk_count_);
      });
      if (stop_) return;
      chunk = next_chunk_++;
      body = body_;
      n = job_n_;
      chunks = chunk_count_;
    }
    lane_chunks_counter().inc();
    (*body)(n * chunk / chunks, n * (chunk + 1) / chunks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace cleaks
