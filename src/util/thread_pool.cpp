#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace cleaks {

int ThreadPool::default_lanes() {
  if (const char* env = std::getenv("CLEAKS_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int lanes) {
  if (lanes <= 0) lanes = default_lanes();
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t n, const ChunkBody& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(lanes()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_n_ = n;
    chunk_count_ = chunks;
    next_chunk_ = 0;
    unfinished_ = chunks;
  }
  work_cv_.notify_all();
  // The caller is a lane too: claim chunks until none are left.
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_chunk_ >= chunk_count_) break;
      chunk = next_chunk_++;
    }
    body(job_n_ * chunk / chunk_count_, job_n_ * (chunk + 1) / chunk_count_);
    std::lock_guard<std::mutex> lock(mu_);
    --unfinished_;
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::size_t chunk;
    const ChunkBody* body;
    std::size_t n;
    std::size_t chunks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (body_ != nullptr && next_chunk_ < chunk_count_);
      });
      if (stop_) return;
      chunk = next_chunk_++;
      body = body_;
      n = job_n_;
      chunks = chunk_count_;
    }
    (*body)(n * chunk / chunks, n * (chunk + 1) / chunks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace cleaks
