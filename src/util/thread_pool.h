// Deterministic fork-join worker pool for the simulation's embarrassingly
// parallel loops (stepping independent servers, walking pseudo-fs paths).
//
// parallel_for uses *static chunking*: [0, n) is split into a fixed set of
// contiguous ranges computed from n and the lane count alone, never from
// runtime timing. Bodies must only write state owned by their own indices
// (all cross-server/cross-path aggregation stays on the caller thread);
// under that contract the results are bitwise-identical to a serial run,
// for every thread count.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cleaks {

class ThreadPool {
 public:
  /// Upper bound on execution lanes. Everything lane-indexed (the metrics
  /// registry's shards, the tracer's per-lane rings) is sized by this, so
  /// requested lane counts are clamped to it.
  static constexpr int kMaxLanes = 64;

  /// `lanes` counts execution lanes *including* the calling thread, so the
  /// pool spawns `lanes - 1` workers. 1 = fully serial (no threads); <= 0 =
  /// default_lanes(); > kMaxLanes is clamped.
  explicit ThreadPool(int lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (workers + caller).
  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// CLEAKS_THREADS environment override, else hardware concurrency. Env
  /// values are sanitized: non-numeric text is ignored, and numeric values
  /// are clamped to [1, kMaxLanes] (0, negatives and absurd counts never
  /// reach the pool).
  static int default_lanes();

  /// Lane id of the calling thread: 0 for any thread outside a pool body
  /// (including the parallel_for caller), 1..lanes-1 for pool workers.
  /// Lane-sharded telemetry keys on this.
  [[nodiscard]] static int current_lane() noexcept { return tls_lane_; }

  /// Range body: handles indices [begin, end). One invocation runs on one
  /// thread, so locals inside the body (e.g. a render buffer) are reused
  /// across the whole range — the "one buffer per worker" pattern.
  using ChunkBody = std::function<void(std::size_t begin, std::size_t end)>;

  /// Run `body` over [0, n) split into min(lanes(), n) static chunks. The
  /// caller participates and blocks until every chunk is done. Not
  /// reentrant from inside a body.
  void parallel_for(std::size_t n, const ChunkBody& body);

  /// Lane-local scratch buffer `slot`, owned by the calling thread's lane:
  /// returned cleared but with its capacity retained, so parallel_for read
  /// bodies that render hundreds of paths reuse one allocation per lane
  /// instead of growing a fresh std::string per chunk. Each lane only ever
  /// touches its own buffers (the same ownership rule as slot-indexed
  /// results), so there is no locking on this path. Call only from this
  /// pool's caller thread or from inside its bodies; references stay valid
  /// for the current chunk (the next scratch(slot) call on the same lane
  /// clears the bytes but never reallocates the string object itself).
  [[nodiscard]] std::string& scratch(std::size_t slot);

 private:
  void worker_loop();

  static inline thread_local int tls_lane_ = 0;

  /// Per-lane scratch storage. Buffers are heap-boxed so handing out a
  /// reference survives the slots vector growing; padded to a cache line
  /// so neighbouring lanes never false-share.
  struct alignas(64) LaneScratch {
    std::vector<std::unique_ptr<std::string>> slots;
  };
  std::array<LaneScratch, kMaxLanes> scratch_;

  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  ///< serializes concurrent parallel_for callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const ChunkBody* body_ = nullptr;  ///< non-null while a job is posted
  std::size_t job_n_ = 0;
  std::size_t chunk_count_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t unfinished_ = 0;
  bool stop_ = false;
};

}  // namespace cleaks
