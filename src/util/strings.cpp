#include "util/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cleaks {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  if (!text.empty() && text.back() == '\n') text.remove_suffix(1);
  if (text.empty()) return {};
  return split(text, '\n');
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

void strappendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  char stack[256];
  const int needed = std::vsnprintf(stack, sizeof stack, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return;
  }
  // Strictly-less keeps the boundary honest: needed == sizeof stack means
  // vsnprintf truncated (the NUL displaced the last byte), so that case
  // must fall through to the heap path along with everything larger.
  // needed == sizeof stack - 1 is the largest string the stack holds
  // whole. Pinned by Strings.StrappendfStackBoundary.
  if (needed < static_cast<int>(sizeof stack)) {
    out.append(stack, static_cast<std::size_t>(needed));
    va_end(args_copy);
    return;
  }
  const std::size_t old_size = out.size();
  out.resize(old_size + static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(out.data() + old_size, static_cast<std::size_t>(needed) + 1,
                 fmt, args_copy);
  va_end(args_copy);
  out.resize(old_size + static_cast<std::size_t>(needed));
}

long long parse_first_int(std::string_view text, long long fallback) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) ||
        (text[i] == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      return std::strtoll(std::string(text.substr(i)).c_str(), nullptr, 10);
    }
  }
  return fallback;
}

double parse_first_double(std::string_view text, double fallback) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) ||
        (text[i] == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      return std::strtod(std::string(text.substr(i)).c_str(), nullptr);
    }
  }
  return fallback;
}

std::vector<long long> extract_ints(std::string_view text) {
  std::vector<long long> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const bool neg = text[i] == '-' && i + 1 < text.size() &&
                     std::isdigit(static_cast<unsigned char>(text[i + 1]));
    if (neg || std::isdigit(static_cast<unsigned char>(text[i]))) {
      char* end = nullptr;
      const std::string token(text.substr(i));
      out.push_back(std::strtoll(token.c_str(), &end, 10));
      i += static_cast<std::size_t>(end - token.c_str());
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<double> extract_numbers(std::string_view text) {
  std::vector<double> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const bool neg = text[i] == '-' && i + 1 < text.size() &&
                     std::isdigit(static_cast<unsigned char>(text[i + 1]));
    if (neg || std::isdigit(static_cast<unsigned char>(text[i]))) {
      char* end = nullptr;
      const std::string token(text.substr(i));
      out.push_back(std::strtod(token.c_str(), &end));
      i += static_cast<std::size_t>(end - token.c_str());
    } else {
      ++i;
    }
  }
  return out;
}

namespace {

// Recursive matcher over pattern/path tails.
bool glob_match_impl(std::string_view pattern, std::string_view path) {
  while (true) {
    if (pattern.empty()) return path.empty();
    if (pattern.size() >= 2 && pattern[0] == '*' && pattern[1] == '*') {
      // '**' — try consuming 0..all characters of path.
      pattern.remove_prefix(2);
      for (std::size_t skip = 0; skip <= path.size(); ++skip) {
        if (glob_match_impl(pattern, path.substr(skip))) return true;
      }
      return false;
    }
    if (pattern[0] == '*') {
      // '*' — consume 0..n non-'/' characters.
      pattern.remove_prefix(1);
      for (std::size_t skip = 0;; ++skip) {
        if (glob_match_impl(pattern, path.substr(skip))) return true;
        if (skip >= path.size() || path[skip] == '/') return false;
      }
    }
    if (path.empty()) return false;
    if (pattern[0] == '?') {
      if (path[0] == '/') return false;
    } else if (pattern[0] != path[0]) {
      return false;
    }
    pattern.remove_prefix(1);
    path.remove_prefix(1);
  }
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view path) {
  return glob_match_impl(pattern, path);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace cleaks
