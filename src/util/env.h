// Strict environment-variable parsing, shared by every CLEAKS_* knob.
//
// History: the repo grew five copies of the same getenv+strtol pattern, and
// the one in Datacenter::resolve_sparse lacked the end-pointer check — so
// `CLEAKS_SPARSE=true` parsed to 0 and silently *disabled* the fast path it
// was meant to force on. One helper, one validation rule: a value that does
// not start with a base-10 number is treated as unset, so every knob falls
// back to its documented default instead of whatever strtol(0) implies.
//
// Header-only: cleaks_obs sits below cleaks_util in the link order and may
// use only inline pieces of util (same rule as thread_pool.h's lane id).
#pragma once

#include <cstdlib>
#include <optional>

namespace cleaks {

/// Parse env var `name` as a base-10 long. Returns nullopt when the
/// variable is unset, empty, or does not begin with a number (matching the
/// end-pointer check ThreadPool::default_lanes always had). Leading
/// whitespace/sign and trailing junk follow strtol: " 42x" parses as 42.
/// Out-of-range values saturate at LONG_MIN/LONG_MAX.
[[nodiscard]] inline std::optional<long> env_long(const char* name) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  // end == value covers both the empty string and non-numeric text.
  if (end == value) return std::nullopt;
  return parsed;
}

/// env_long() with a default: the parsed value, or `fallback` when the
/// variable is unset or non-numeric.
[[nodiscard]] inline long env_long_or(const char* name,
                                      long fallback) noexcept {
  return env_long(name).value_or(fallback);
}

}  // namespace cleaks
