// Discrete-event core: a bucketed timer wheel keyed by sim-time.
//
// The sparse scheduler (cloud::Datacenter) tracks each server's
// next-interesting-time — workload phase change, fleet-control action,
// fault window edge — on one wheel per facility, and only pops the
// servers whose time has come; everything else coasts analytically
// (hw/idle_coast.h). Shape follows the jiffies/HZ single-time-authority
// idiom: one sim clock, pluggable bucket resolution, per-entity deadlines.
//
// Determinism: pop_due() returns entries sorted by (time, id) regardless
// of insertion order, bucket width or how the wheel wrapped, so a consumer
// that iterates the result draws identical conclusions at every thread
// count. Stale entries are allowed and benign — an entity woken early by a
// mutation simply sees a no-op pop later; consumers must treat a pop as a
// hint ("look at this id"), never as state.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/sim_time.h"

namespace cleaks {

class TimerWheel {
 public:
  struct Entry {
    SimTime time = 0;
    std::uint32_t id = 0;
  };

  /// next_due() sentinel: nothing is scheduled.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  /// `bucket_width` is the wheel resolution (entries within one bucket are
  /// kept unsorted until popped); `num_buckets` fixes the horizon — events
  /// beyond base + width * buckets wait in an overflow list and cascade in
  /// as the wheel turns.
  explicit TimerWheel(SimDuration bucket_width = kMinute,
                      std::size_t num_buckets = 256);

  /// Schedule `id` to pop once the wheel's clock reaches `time`. A time at
  /// or before the last pop_due() clock pops on the very next call.
  void schedule(SimTime time, std::uint32_t id);

  /// Pop every entry with time <= now, sorted by (time, id). The wheel
  /// clock is monotonic: a `now` behind the previous call is clamped to it
  /// (asserted in debug builds), so a confused caller can never re-pop a
  /// window or corrupt the cursor.
  std::vector<Entry> pop_due(SimTime now);

  /// Earliest scheduled time, or kNever when the wheel is empty. This is a
  /// lower bound on the next non-empty pop_due(): the coalescing scheduler
  /// uses it to take one variable-length step across the gap. Stale (
  /// already-obsolete) entries still count — they only make the bound
  /// conservative. O(buckets + cursor-bucket entries).
  [[nodiscard]] SimTime next_due() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] SimDuration bucket_width() const noexcept { return width_; }

 private:
  /// Move overflow entries that now fit under the horizon into buckets.
  void cascade_();
  [[nodiscard]] std::size_t bucket_of(SimTime time) const noexcept {
    return static_cast<std::size_t>(time / width_) % buckets_.size();
  }
  /// End of the last in-bucket window. Saturates at kNever instead of
  /// wrapping when base_ approaches the top of the u64 range — a wrapped
  /// horizon would classify every future entry as in-bucket and corrupt
  /// the wheel (regression-tested with schedules near kNever).
  [[nodiscard]] SimTime horizon() const noexcept {
    const SimTime span = width_ * buckets_.size();
    return base_ > kNever - span ? kNever : base_ + span;
  }

  SimDuration width_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;  ///< beyond the current horizon
  SimTime overflow_min_ = kNever;  ///< min time in overflow_ (kNever: none)
  SimTime base_ = 0;             ///< start of the cursor bucket's window
  SimTime last_now_ = 0;         ///< pop_due monotonicity clamp
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cleaks
