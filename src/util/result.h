// Result/StatusCode: recoverable-error handling for pseudo-file I/O paths.
//
// The Core Guidelines (E.2/E.3) reserve exceptions for genuine error
// conditions the caller cannot handle locally. In this library a denied read
// of a masked pseudo file is *data* (the leakage detector classifies it), so
// pseudo-fs reads return Result<std::string> instead of throwing.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cleaks {

/// Error categories for recoverable failures on the simulated kernel
/// interface boundary. Values intentionally mirror errno semantics so that
/// pseudo-file behaviour reads like real procfs/sysfs behaviour.
enum class StatusCode {
  kOk = 0,
  kNotFound,          ///< ENOENT: path does not exist in this view.
  kPermissionDenied,  ///< EACCES: masked by policy (stage-1 defense).
  kNotSupported,      ///< ENOTSUP: hardware absent (e.g. no RAPL).
  kInvalidArgument,   ///< EINVAL: malformed request.
  kUnavailable,       ///< EBUSY / transient failure.
  kOutOfRange,        ///< value outside the representable domain.
};

/// Human-readable name for a StatusCode, for logs and test diagnostics.
std::string_view to_string(StatusCode code) noexcept;

/// A status with an optional detail message. Cheap to copy when ok.
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  /// True when the code matches and the message contains
  /// `message_substr` (empty substring matches any message). Use this —
  /// not operator== — to assert on diagnostics: equality deliberately
  /// ignores messages, so `status == Status{code, "text"}` passes no
  /// matter what the message says.
  [[nodiscard]] bool Matches(StatusCode code,
                             std::string_view message_substr = {}) const {
    return code_ == code &&
           message_.find(message_substr) != std::string::npos;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a non-ok Status. Accessing the value of a
/// failed result is a programming error and asserts/throws.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }
  Result(StatusCode code, std::string message = {})
      : Result(Status{code, std::move(message)}) {}

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(state_);
  }
  [[nodiscard]] StatusCode code() const noexcept {
    return is_ok() ? StatusCode::kOk : std::get<Status>(state_).code();
  }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  /// Value if ok, otherwise the provided fallback.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(state_).to_string());
    }
  }

  std::variant<T, Status> state_;
};

}  // namespace cleaks
