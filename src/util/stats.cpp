#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cleaks {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size());
  return cov / (sa.stddev() * sb.stddev());
}

namespace {

template <typename Map>
double entropy_of_counts(const Map& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double shannon_entropy(std::span<const double> samples) {
  std::unordered_map<double, std::size_t> counts;
  for (double s : samples) ++counts[s];
  return entropy_of_counts(counts, samples.size());
}

double shannon_entropy_strings(std::span<const std::string> samples) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& s : samples) ++counts[s];
  return entropy_of_counts(counts, samples.size());
}

double joint_channel_entropy(std::span<const std::vector<double>> fields) {
  double h = 0.0;
  for (const auto& field : fields) {
    h += shannon_entropy(std::span<const double>{field});
  }
  return h;
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  if (observed.size() != predicted.size() || observed.empty()) return 0.0;
  RunningStats so;
  for (double o : observed) so.add(o);
  double ss_res = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = observed[i] - predicted[i];
    ss_res += e * e;
  }
  const double ss_tot = so.variance() * static_cast<double>(observed.size());
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double binned_entropy(std::span<const double> samples, int bins) {
  if (samples.empty() || bins <= 0) return 0.0;
  RunningStats s;
  for (double x : samples) s.add(x);
  const double lo = s.min();
  const double hi = s.max();
  if (hi <= lo) return 0.0;  // constant field carries no information
  std::map<int, std::size_t> counts;
  for (double x : samples) {
    int bin = static_cast<int>((x - lo) / (hi - lo) * bins);
    bin = std::clamp(bin, 0, bins - 1);
    ++counts[bin];
  }
  return entropy_of_counts(counts, samples.size());
}

}  // namespace cleaks
