#include "util/event_core.h"

#include <algorithm>
#include <cassert>

namespace cleaks {

TimerWheel::TimerWheel(SimDuration bucket_width, std::size_t num_buckets)
    : width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets == 0 ? 1 : num_buckets) {}

void TimerWheel::schedule(SimTime time, std::uint32_t id) {
  ++size_;
  if (time >= horizon()) {
    overflow_.push_back({time, id});
    overflow_min_ = std::min(overflow_min_, time);
  } else if (time < base_) {
    // Already due (or in the past): park it in the cursor bucket so the
    // next pop_due finds it.
    buckets_[cursor_].push_back({time, id});
  } else {
    buckets_[bucket_of(time)].push_back({time, id});
  }
}

void TimerWheel::cascade_() {
  if (overflow_.empty()) return;
  std::size_t kept = 0;
  overflow_min_ = kNever;
  for (const Entry& entry : overflow_) {
    if (entry.time < horizon()) {
      buckets_[bucket_of(entry.time)].push_back(entry);
    } else {
      overflow_min_ = std::min(overflow_min_, entry.time);
      overflow_[kept++] = entry;
    }
  }
  overflow_.resize(kept);
}

std::vector<TimerWheel::Entry> TimerWheel::pop_due(SimTime now) {
  // The documented contract was always "now must not go backwards"; now it
  // is enforced instead of trusted. A backwards `now` would re-pop windows
  // already drained and desynchronise base_/cursor_ — clamp to the
  // high-water mark so the call degrades to a harmless same-time pop.
  assert(now >= last_now_ && "TimerWheel::pop_due: clock went backwards");
  now = std::max(now, last_now_);
  last_now_ = now;
  if (size_ == 0) {
    // Empty wheel: jump the clock in O(1) instead of turning bucket by
    // bucket (a mostly-idle facility steps for hours without any event).
    if (now > base_) {
      const SimTime ahead = (now - base_) / width_;
      cursor_ = (cursor_ + ahead) % buckets_.size();
      base_ += ahead * width_;
    }
    return {};
  }
  std::vector<Entry> due;
  // A jump past the whole horizon (hours of coasted idle between wakeups)
  // makes every in-bucket window due: drain them all and teleport the
  // clock instead of turning bucket by bucket.
  const SimTime span = width_ * buckets_.size();
  const bool jumped_past_horizon = base_ <= now && now - base_ >= span - 1;
  if (jumped_past_horizon) {
    for (auto& bucket : buckets_) {
      due.insert(due.end(), bucket.begin(), bucket.end());
      size_ -= bucket.size();
      bucket.clear();
    }
    const SimTime ahead = (now - base_) / width_;
    cursor_ = (cursor_ + ahead) % buckets_.size();
    base_ += ahead * width_;  // <= now, so this cannot wrap
  }
  // Whole buckets strictly behind `now` drain en bloc. The condition is
  // the overflow-safe spelling of `base_ + width_ <= now + 1` (which wraps
  // when now == kNever); base_ can sit one past `now` after a drain, hence
  // the first clause.
  while (base_ <= now && now - base_ >= width_ - 1) {
    auto& bucket = buckets_[cursor_];
    due.insert(due.end(), bucket.begin(), bucket.end());
    size_ -= bucket.size();
    bucket.clear();
    cursor_ = (cursor_ + 1) % buckets_.size();
    if (base_ > kNever - width_) {
      // The wheel clock has hit the top of the u64 range; stop advancing
      // (horizon() is already saturated at kNever, and the direct overflow
      // drain below picks up anything that can no longer cascade).
      base_ = kNever;
      cascade_();
      break;
    }
    base_ += width_;
    cascade_();
  }
  // The cursor bucket may hold entries at or before `now` mid-window.
  auto& bucket = buckets_[cursor_];
  for (std::size_t i = 0; i < bucket.size();) {
    if (bucket[i].time <= now) {
      due.push_back(bucket[i]);
      bucket[i] = bucket.back();
      bucket.pop_back();
      --size_;
    } else {
      ++i;
    }
  }
  // Overflow entries can come due without ever cascading in when the
  // horizon saturates near kNever; drain them directly. Gated on the
  // cached minimum so the common case (far-future overflow) stays O(1).
  if (overflow_min_ <= now) {
    std::size_t kept = 0;
    overflow_min_ = kNever;
    for (const Entry& entry : overflow_) {
      if (entry.time <= now) {
        due.push_back(entry);
        --size_;
      } else {
        overflow_min_ = std::min(overflow_min_, entry.time);
        overflow_[kept++] = entry;
      }
    }
    overflow_.resize(kept);
  }
  // After a horizon-sized jump the cascade in the loop above may not have
  // run at all; pull newly-reachable overflow entries (all > now, handled
  // directly above otherwise) into their — now correct — future windows.
  if (jumped_past_horizon) cascade_();
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.id < b.id;
  });
  return due;
}

SimTime TimerWheel::next_due() const noexcept {
  if (size_ == 0) return kNever;
  SimTime earliest = overflow_min_;
  // Buckets cover consecutive windows starting at the cursor; the first
  // non-empty one holds the earliest in-bucket entry (the cursor bucket may
  // also hold already-late entries, which only tighten the bound).
  for (std::size_t step = 0; step < buckets_.size(); ++step) {
    const auto& bucket = buckets_[(cursor_ + step) % buckets_.size()];
    if (bucket.empty()) continue;
    for (const Entry& entry : bucket) {
      earliest = std::min(earliest, entry.time);
    }
    break;
  }
  return earliest;
}

}  // namespace cleaks
