#include "util/event_core.h"

#include <algorithm>

namespace cleaks {

TimerWheel::TimerWheel(SimDuration bucket_width, std::size_t num_buckets)
    : width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets == 0 ? 1 : num_buckets) {}

void TimerWheel::schedule(SimTime time, std::uint32_t id) {
  ++size_;
  if (time >= horizon()) {
    overflow_.push_back({time, id});
  } else if (time < base_) {
    // Already due (or in the past): park it in the cursor bucket so the
    // next pop_due finds it.
    buckets_[cursor_].push_back({time, id});
  } else {
    buckets_[bucket_of(time)].push_back({time, id});
  }
}

void TimerWheel::cascade_() {
  if (overflow_.empty()) return;
  std::size_t kept = 0;
  for (const Entry& entry : overflow_) {
    if (entry.time < horizon()) {
      buckets_[bucket_of(entry.time)].push_back(entry);
    } else {
      overflow_[kept++] = entry;
    }
  }
  overflow_.resize(kept);
}

std::vector<TimerWheel::Entry> TimerWheel::pop_due(SimTime now) {
  if (size_ == 0) {
    // Empty wheel: jump the clock in O(1) instead of turning bucket by
    // bucket (a mostly-idle facility steps for hours without any event).
    if (now > base_) {
      const SimTime ahead = (now - base_) / width_;
      cursor_ = (cursor_ + ahead) % buckets_.size();
      base_ += ahead * width_;
    }
    return {};
  }
  std::vector<Entry> due;
  // Whole buckets strictly behind `now` drain en bloc.
  while (base_ + width_ <= now + 1) {
    auto& bucket = buckets_[cursor_];
    due.insert(due.end(), bucket.begin(), bucket.end());
    size_ -= bucket.size();
    bucket.clear();
    base_ += width_;
    cursor_ = (cursor_ + 1) % buckets_.size();
    cascade_();
  }
  // The cursor bucket may hold entries at or before `now` mid-window.
  auto& bucket = buckets_[cursor_];
  for (std::size_t i = 0; i < bucket.size();) {
    if (bucket[i].time <= now) {
      due.push_back(bucket[i]);
      bucket[i] = bucket.back();
      bucket.pop_back();
      --size_;
    } else {
      ++i;
    }
  }
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.id < b.id;
  });
  return due;
}

}  // namespace cleaks
