#include "faults/injector.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace cleaks::faults {
namespace {

// Fault telemetry. Injection decisions are pure functions of (plan, path,
// sim time) and the set of reads the simulation performs is itself
// deterministic, so these counters merge to the same totals at every
// thread count: Scope::kSim.
struct FaultMetrics {
  obs::Counter& injected = obs::Registry::global().counter(
      "faults_injected_total", "reads answered with an injected fault");
  obs::Counter& denied = obs::Registry::global().counter(
      "faults_denied_total", "reads answered with an injected EACCES flip");
  obs::Counter& rapl_wraps = obs::Registry::global().counter(
      "faults_rapl_wraps_forced_total", "RAPL counter wraps forced at steps");
  obs::Counter& perf_dropouts = obs::Registry::global().counter(
      "faults_perf_dropouts_total",
      "perf sampling windows hit by multiplexing dropout");

  static FaultMetrics& get() {
    static FaultMetrics metrics;
    return metrics;
  }
};

// Subject keys for the non-path-keyed fault kinds.
constexpr std::uint64_t kRaplSubject = 0x7261706c;  // "rapl"
constexpr std::uint64_t kPerfSubject = 0x70657266;  // "perf"

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), base_(plan_.seed ^ 0xfa017ab1ef5ull) {}

double FaultInjector::draw01(std::uint64_t rule_index, std::uint64_t subject,
                             std::uint64_t window) const {
  // fork() never advances the parent, so this chain is a pure keyed hash:
  // the same (rule, subject, window) triple yields the same draw forever.
  Rng stream = base_.fork(rule_index).fork(subject).fork(window);
  return stream.uniform01();
}

bool FaultInjector::rule_active(const FaultRule& rule, SimTime now) const {
  if (now < rule.start) return false;
  if (rule.end != 0 && now >= rule.end) return false;
  return true;
}

StatusCode FaultInjector::read_fault(std::string_view path,
                                     SimTime now) const {
  if (plan_.rules.empty()) return StatusCode::kOk;
  std::uint64_t path_hash = 0;
  bool hashed = false;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kTransientUnavailable &&
        rule.kind != FaultKind::kPermanentDeny) {
      continue;
    }
    if (!rule_active(rule, now)) continue;
    if (!glob_match(rule.path_glob, path)) continue;
    if (rule.kind == FaultKind::kPermanentDeny) {
      FaultMetrics::get().injected.inc();
      FaultMetrics::get().denied.inc();
      if (auto& bus = obs::EventBus::global(); bus.enabled()) {
        // Source is the path identity, not the reader's lane: the set of
        // faulted reads is deterministic, so the event stream is too.
        bus.emit(obs::EventKind::kFaultInjected, now,
                 static_cast<std::uint32_t>(fnv1a64(path)),
                 static_cast<std::uint64_t>(StatusCode::kPermissionDenied), 0);
      }
      return StatusCode::kPermissionDenied;
    }
    if (rule.period == 0 || rule.duration == 0) continue;
    if (!hashed) {
      path_hash = fnv1a64(path);
      hashed = true;
    }
    const std::uint64_t window = now / rule.period;
    const SimDuration offset = now - window * rule.period;
    if (offset < rule.duration &&
        draw01(i, path_hash, window) < rule.rate) {
      FaultMetrics::get().injected.inc();
      if (auto& bus = obs::EventBus::global(); bus.enabled()) {
        bus.emit(obs::EventKind::kFaultInjected, now,
                 static_cast<std::uint32_t>(path_hash),
                 static_cast<std::uint64_t>(StatusCode::kUnavailable), window);
      }
      return StatusCode::kUnavailable;
    }
  }
  return StatusCode::kOk;
}

bool FaultInjector::covers(std::string_view path) const {
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != FaultKind::kTransientUnavailable &&
        rule.kind != FaultKind::kPermanentDeny) {
      continue;
    }
    if (glob_match(rule.path_glob, path)) return true;
  }
  return false;
}

bool FaultInjector::rapl_wrap_at_step(std::uint64_t step_index,
                                      SimTime now) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kRaplWrapForce) continue;
    if (!rule_active(rule, now)) continue;
    if (draw01(i, kRaplSubject, step_index) < rule.rate) {
      FaultMetrics::get().rapl_wraps.inc();
      return true;
    }
  }
  return false;
}

double FaultInjector::perf_retention(SimTime now) const {
  double retention = 1.0;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kPerfDropout) continue;
    if (!rule_active(rule, now)) continue;
    if (rule.period == 0) continue;
    const std::uint64_t window = now / rule.period;
    if (draw01(i, kPerfSubject, window) < rule.rate) {
      retention = std::min(retention, rule.scale);
    }
  }
  if (retention < 1.0) FaultMetrics::get().perf_dropouts.inc();
  return retention;
}

}  // namespace cleaks::faults
