#include "faults/plan.h"

#include <cstdlib>
#include <string>

namespace cleaks::faults {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientUnavailable: return "transient-unavailable";
    case FaultKind::kPermanentDeny: return "permanent-deny";
    case FaultKind::kRaplWrapForce: return "rapl-wrap-force";
    case FaultKind::kPerfDropout: return "perf-dropout";
  }
  return "unknown";
}

Result<FaultKind> fault_kind_from_string(std::string_view text) {
  if (text == "transient-unavailable") return FaultKind::kTransientUnavailable;
  if (text == "permanent-deny") return FaultKind::kPermanentDeny;
  if (text == "rapl-wrap-force") return FaultKind::kRaplWrapForce;
  if (text == "perf-dropout") return FaultKind::kPerfDropout;
  return {StatusCode::kInvalidArgument,
          "unknown fault kind: " + std::string(text)};
}

void append_plan_json(const FaultPlan& plan, obs::JsonWriter& json,
                      std::string_view key) {
  json.begin_object(key);
  json.field("seed", plan.seed);
  json.begin_array("rules");
  for (const FaultRule& rule : plan.rules) {
    json.begin_object()
        .field("kind", to_string(rule.kind))
        .field("path_glob", rule.path_glob)
        .field("rate", rule.rate)
        .field("period_ns", rule.period)
        .field("duration_ns", rule.duration)
        .field("start_ns", rule.start)
        .field("end_ns", rule.end)
        .field("scale", rule.scale)
        .end_object();
  }
  json.end_array();
  json.end_object();
}

namespace {

/// Recursive-descent reader for exactly the document shape
/// append_plan_json emits. Unknown keys are errors: the round-trip
/// guarantee is serialize -> parse -> identical plan, nothing looser.
class PlanParser {
 public:
  explicit PlanParser(std::string_view text) : text_(text) {}

  Result<FaultPlan> parse() {
    FaultPlan plan;
    skip_ws();
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    // Accept the wrapped form {"faults": {...}} that a spec document uses.
    if (peek() == '"') {
      const std::size_t mark = pos_;
      std::string first_key;
      if (parse_string(first_key) && first_key == "faults") {
        skip_ws();
        if (!consume(':')) return fail("expected ':' after \"faults\"");
        const Status body = parse_plan_body(plan);
        if (!body.is_ok()) return body;
        skip_ws();
        if (!consume('}')) return fail("expected '}' closing the wrapper");
        return finish(plan);
      }
      pos_ = mark;  // bare plan object: rewind and parse members here
    }
    pos_ = 0;
    const Status body = parse_plan_body(plan);
    if (!body.is_ok()) return body;
    return finish(plan);
  }

 private:
  Result<FaultPlan> finish(FaultPlan& plan) {
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after plan");
    return plan;
  }

  Status parse_plan_body(FaultPlan& plan) {
    skip_ws();
    if (!consume('{')) return fail("expected '{' opening the plan");
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      std::string key;
      if (!parse_string(key)) return fail("expected a member name");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after \"" + key + "\"");
      skip_ws();
      if (key == "seed") {
        double seed = 0.0;
        if (!parse_number(seed)) return fail("bad seed");
        plan.seed = static_cast<std::uint64_t>(seed);
      } else if (key == "rules") {
        const Status rules = parse_rules(plan.rules);
        if (!rules.is_ok()) return rules;
      } else {
        return fail("unknown plan member: " + key);
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}' in plan object");
    }
  }

  Status parse_rules(std::vector<FaultRule>& rules) {
    if (!consume('[')) return fail("expected '[' opening rules");
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      FaultRule rule;
      const Status status = parse_rule(rule);
      if (!status.is_ok()) return status;
      rules.push_back(std::move(rule));
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume(']')) return Status::ok();
      return fail("expected ',' or ']' in rules array");
    }
  }

  Status parse_rule(FaultRule& rule) {
    if (!consume('{')) return fail("expected '{' opening a rule");
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      std::string key;
      if (!parse_string(key)) return fail("expected a rule member name");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after \"" + key + "\"");
      skip_ws();
      if (key == "kind") {
        std::string kind_text;
        if (!parse_string(kind_text)) return fail("bad rule kind");
        auto kind = fault_kind_from_string(kind_text);
        if (!kind.is_ok()) return kind.status();
        rule.kind = kind.value();
      } else if (key == "path_glob") {
        if (!parse_string(rule.path_glob)) return fail("bad path_glob");
      } else {
        double number = 0.0;
        if (!parse_number(number)) return fail("bad number for " + key);
        if (key == "rate") {
          rule.rate = number;
        } else if (key == "period_ns") {
          rule.period = static_cast<SimDuration>(number);
        } else if (key == "duration_ns") {
          rule.duration = static_cast<SimDuration>(number);
        } else if (key == "start_ns") {
          rule.start = static_cast<SimTime>(number);
        } else if (key == "end_ns") {
          rule.end = static_cast<SimTime>(number);
        } else if (key == "scale") {
          rule.scale = number;
        } else {
          return fail("unknown rule member: " + key);
        }
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}' in rule object");
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return false;  // \uXXXX etc: the writer never emits them
        }
        continue;
      }
      out.push_back(c);
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) return false;
    const std::string token(text_.substr(begin, pos_ - begin));
    char* parse_end = nullptr;
    out = std::strtod(token.c_str(), &parse_end);
    return parse_end == token.c_str() + token.size();
  }

  Status fail(std::string why) const {
    return Status{StatusCode::kInvalidArgument,
                  "fault plan parse error at offset " + std::to_string(pos_) +
                      ": " + std::move(why)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<FaultPlan> parse_plan_json(std::string_view text) {
  return PlanParser(text).parse();
}

}  // namespace cleaks::faults
