// FaultPlan: the declarative description of interface flakiness.
//
// The paper's channels live behind a policy-mediated kernel interface:
// reads get denied by stage-1 masking (§V), hardware channels vanish when
// RAPL is absent (§IV), and real procfs returns transient EBUSY under
// load. A FaultPlan — declared on ScenarioSpec and JSON round-trippable
// like the rest of the spec — injects exactly those outcomes into a run:
// bounded kUnavailable windows, permanent kPermissionDenied flips, forced
// RAPL counter wraps at step boundaries, and perf multiplexing dropout
// for the defense's calibration sweep.
//
// Determinism contract: every fault is a *pure function* of
// (plan seed, rule index, path, sim-time window). There is no mutable RNG
// state anywhere in the subsystem, so concurrent readers at any thread
// count observe the identical fault schedule (the PR-1/2/3 invariant).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace cleaks::faults {

enum class FaultKind {
  kTransientUnavailable,  ///< reads return EBUSY inside drawn windows
  kPermanentDeny,         ///< reads return EACCES from `start` onward
  kRaplWrapForce,         ///< park RAPL counters at the wrap edge at a step
  kPerfDropout,           ///< perf multiplexing: sample keeps only `scale`
};

std::string to_string(FaultKind kind);
Result<FaultKind> fault_kind_from_string(std::string_view text);

/// One fault rule. Time-driven kinds (transient/dropout) divide sim time
/// into windows of `period`; each window independently faults with
/// probability `rate` and, when it does, the fault spans the first
/// `duration` of the window. With duration < period every transient
/// resolves before the window ends — the recoverable regime the scanner's
/// bounded retry is sized against.
struct FaultRule {
  FaultKind kind = FaultKind::kTransientUnavailable;
  /// Which paths the rule covers (AppArmor-style glob, like MaskRule).
  /// Ignored by kRaplWrapForce / kPerfDropout, which are not path-keyed.
  std::string path_glob = "**";
  double rate = 1.0;                          ///< per-window/step probability
  SimDuration period = 2 * kSecond;           ///< window cadence
  SimDuration duration = 200 * kMillisecond;  ///< fault span per window
  SimTime start = 0;                          ///< rule active from here...
  SimTime end = 0;                            ///< ...until here (0 = open)
  double scale = 0.0;  ///< kPerfDropout: fraction of the window retained
};

/// The complete fault schedule for one scenario. Empty plan = no faults
/// and (by construction) zero overhead on the read path.
struct FaultPlan {
  /// Keys the dedicated fault RNG stream, independent of every simulation
  /// stream — changing the fault seed never perturbs the physics.
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

/// Append the plan as an object under `key` to an open JSON object.
void append_plan_json(const FaultPlan& plan, obs::JsonWriter& json,
                      std::string_view key = "faults");

/// Parse a document produced by append_plan_json (accepts both a bare
/// plan object and one wrapped under a "faults" key). This is the repo's
/// only JSON reader, scoped to exactly the plan's own shape so specs can
/// make the "round-trippable" claim literally true.
Result<FaultPlan> parse_plan_json(std::string_view text);

}  // namespace cleaks::faults
