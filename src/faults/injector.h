// FaultInjector: evaluates a FaultPlan against (path, sim time) queries.
//
// Stateless by design: every query is a pure function of the plan and the
// query coordinates, so the injector can be consulted concurrently from
// any number of scan workers without locks and without perturbing any
// simulation RNG stream. Draws come from Rng::fork chains keyed on
// (plan seed, rule index, fnv1a64(path), time window) — the same window
// always resolves to the same verdict no matter who asks, in what order,
// or on which thread.
#pragma once

#include <cstdint>
#include <string_view>

#include "faults/plan.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cleaks::faults {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Fault verdict for reading `path` at sim time `now`: kOk (no fault),
  /// kUnavailable (inside a drawn transient window) or kPermissionDenied
  /// (a permanent flip whose start has passed). Counts injections.
  [[nodiscard]] StatusCode read_fault(std::string_view path,
                                      SimTime now) const;

  /// True when any read-faulting rule's glob matches `path`, regardless of
  /// sim time or rate. Deliberately conservative (a rate-0 rule still
  /// covers): fault draws are keyed by sim-time window, so a covered path
  /// must bypass every render cache — serving memoized bytes would skip
  /// the draw that decides whether this exact read faults.
  [[nodiscard]] bool covers(std::string_view path) const;

  /// True when a kRaplWrapForce rule fires at engine step `step_index`
  /// (a monotonic index that survives measurement resets).
  [[nodiscard]] bool rapl_wrap_at_step(std::uint64_t step_index,
                                       SimTime now) const;

  /// Fraction of the perf sampling window at `now` that multiplexing kept
  /// scheduled; 1.0 = clean sample. The defense trainer treats anything
  /// below 1.0 as a poisoned calibration sample and skips it.
  [[nodiscard]] double perf_retention(SimTime now) const;

 private:
  /// The pure draw: uniform [0,1) keyed on (rule, subject, window).
  [[nodiscard]] double draw01(std::uint64_t rule_index, std::uint64_t subject,
                              std::uint64_t window) const;
  [[nodiscard]] bool rule_active(const FaultRule& rule, SimTime now) const;

  FaultPlan plan_;
  Rng base_;  ///< never advanced: only fork()ed per query
};

}  // namespace cleaks::faults
