// Streaming consumers of the event bus (obs/events.h):
//
//  * WindowAggregator — tumbling sim-time windows over the merged stream,
//    producing per-source event-rate/kind-histogram summaries: the input
//    shape an online behavior IDS (n-gram trainer) consumes. Windows are
//    half-open [k·W, (k+1)·W): an event exactly on a tumbling edge belongs
//    to the *next* window, and only that one.
//  * FlightRecorder — keeps the last N sim-seconds of merged events and
//    dumps them as a `cleaks-events-v1` JSON document on demand, on a
//    failed bench_check(), or from a std::terminate handler when enabled
//    via CLEAKS_FLIGHT_RECORDER (value = window in sim-seconds; "1" keeps
//    the 30 s default).
//  * to_chrome_trace — chrome://tracing-loadable JSON from events plus
//    existing spans: per-server counter tracks, instants for faults and
//    scan findings, container lifetimes as async slices.
//
// Everything here runs on the drain thread (the engine's measurement
// phase), so no locking: the bus's per-lane rings are the only concurrent
// structure.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "obs/trace.h"
#include "util/sim_time.h"

namespace cleaks::obs {

inline constexpr std::string_view kEventsSchema = "cleaks-events-v1";

/// One closed tumbling window over the merged stream.
struct WindowSummary {
  SimTime start = 0;  ///< inclusive
  SimTime end = 0;    ///< exclusive
  std::uint64_t total = 0;
  std::array<std::uint64_t, kNumEventKinds> by_kind{};
  /// Per-source event counts, sorted by source id (the per-container /
  /// per-server rate breakdown).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> by_source;

  [[nodiscard]] double rate_per_s() const;
};

class WindowAggregator {
 public:
  explicit WindowAggregator(SimDuration width);

  /// Consume one drained (merged, time-sorted) batch. Batches must arrive
  /// in stream order across calls; windows older than the current one are
  /// closed as later events arrive. Empty windows are not materialized.
  void feed(const std::vector<Event>& merged);
  /// Close the currently open window (call once, after the last feed).
  void flush();

  [[nodiscard]] const std::vector<WindowSummary>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] SimDuration width() const noexcept { return width_; }
  /// FNV over every closed window — lane-count-independent because the
  /// merged stream is.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  void close_current();

  SimDuration width_;
  bool open_ = false;
  std::uint64_t current_index_ = 0;  ///< window ordinal = start / width
  WindowSummary current_;
  std::vector<WindowSummary> windows_;
};

class FlightRecorder {
 public:
  static constexpr SimDuration kDefaultWindow = 30 * kSecond;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  /// How much trailing sim-time of events to retain.
  void set_window(SimDuration keep) noexcept { keep_ = keep; }
  [[nodiscard]] SimDuration window() const noexcept { return keep_; }

  /// Consume one drained batch; evicts events older than window() behind
  /// the latest timestamp seen.
  void feed(const std::vector<Event>& merged);

  [[nodiscard]] const std::deque<Event>& buffered() const noexcept {
    return events_;
  }

  /// The retained events as a cleaks-events-v1 JSON document.
  [[nodiscard]] std::string dump_json() const;
  /// Write dump_json() to bench_dir()/FLIGHT_<tag>.json; returns the path
  /// ("" on I/O failure).
  std::string dump_to_file(std::string_view tag) const;

  /// Process-wide recorder, configured from CLEAKS_FLIGHT_RECORDER on
  /// first use; when the env enables it, a std::terminate hook is
  /// installed that dumps FLIGHT_fatal.json before dying.
  static FlightRecorder& global();

 private:
  bool enabled_ = false;
  SimDuration keep_ = kDefaultWindow;
  SimTime latest_ = 0;
  std::deque<Event> events_;
};

/// Bench assertion with a black box: on failure prints `what` to stderr
/// and, if the global flight recorder is enabled, dumps its buffer to
/// FLIGHT_<tag>.json. Returns `ok` so benches keep their own exit-code
/// logic.
bool bench_check(bool ok, std::string_view tag, std::string_view what);

/// chrome://tracing / Perfetto-loadable JSON. Each event source becomes a
/// process track ("server-<id>"): kCtxSwitch/kPerfEvent/kRaplSample/
/// kThermalSample render as counter samples, kFaultInjected/kScanFinding/
/// kCgroupMutation as instants, and kContainerLifecycle pairs as async
/// slices spanning the container's life. Spans render as complete ("X")
/// events on an "engine" track. Sim time maps 1 ns -> 1/1000 trace µs.
std::string to_chrome_trace(const std::vector<Event>& events,
                            const std::vector<Span>& spans = {});

}  // namespace cleaks::obs
