// Sim-time span tracer.
//
// Spans are keyed on util/sim_time.h's simulated clock, never the wall
// clock, so for a given seed a trace is deterministic and diffable: the
// same simulation produces byte-identical span sets at every thread count.
// Records land in per-lane ring buffers (wait-free from pool bodies) and
// drain() merges them into one list sorted by (start, end, name) — which
// lane recorded a span is scheduling luck, so lane identity is deliberately
// not part of a span, and the sorted order depends only on simulated state.
//
// Enabled via the CLEAKS_TRACE environment variable ("0"/unset = off,
// "1" = on with the default ring capacity, N>1 = on with capacity N per
// lane) or programmatically with set_enabled(). When the ring wraps, the
// oldest spans in that lane are overwritten and counted in dropped().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace cleaks::obs {

struct Span {
  std::string name;
  SimTime start = 0;
  SimTime end = 0;

  friend bool operator==(const Span& a, const Span& b) {
    return a.start == b.start && a.end == b.end && a.name == b.name;
  }
};

class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  ///< spans per lane

  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity per lane. Call while no spans are being recorded.
  void set_capacity(std::size_t per_lane);

  /// Record one finished span. No-op while disabled. Wait-free with respect
  /// to other lanes (each lane owns its ring).
  void record(std::string_view name, SimTime start, SimTime end);

  /// Merge every lane's ring into one list sorted by (start, end, name) and
  /// clear the rings. Call while recording is quiescent (after a join).
  std::vector<Span> drain();

  /// Spans overwritten because a lane's ring wrapped (since last drain).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// FNV-1a over a drained (sorted) span list: the trace digest pinned
  /// across thread counts by the determinism tests.
  static std::uint64_t digest(const std::vector<Span>& spans);

  /// Process-wide tracer, configured from CLEAKS_TRACE on first use.
  static SpanTracer& global();

 private:
  struct alignas(64) Lane {
    std::vector<Span> ring;
    std::size_t next = 0;  ///< insertion cursor (mod capacity once full)
    std::uint64_t dropped = 0;
  };

  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = kDefaultCapacity;
  std::array<Lane, ThreadPool::kMaxLanes> lanes_;
};

/// RAII helper: records `name` from construction to destruction against a
/// caller-supplied sim-clock callable (e.g. [&] { return host.now(); }).
template <typename NowFn>
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer& tracer, std::string_view name, NowFn now)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        now_(std::move(now)),
        start_(tracer_ != nullptr ? now_() : SimTime{0}) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->record(name_, start_, now_());
  }

 private:
  SpanTracer* tracer_;
  std::string_view name_;
  NowFn now_;
  SimTime start_;
};

}  // namespace cleaks::obs
