#include "obs/events.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/env.h"

namespace cleaks::obs {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xff;
    hash *= kFnvPrime;
  }
}

// Drop accounting is part of the stream contract ("counted, never
// silent"). Scope::kSim: under the supported drain cadence the count is a
// pure function of the scenario (zero when consumers keep up; the
// single-lane no-consumer bench wraps the same way every run).
struct EventMetrics {
  obs::Counter& dropped = obs::Registry::global().counter(
      "events_dropped_total",
      "events overwritten because a lane ring wrapped before a drain");

  static EventMetrics& get() {
    static EventMetrics metrics;
    return metrics;
  }
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kCtxSwitch:
      return "ctx_switch";
    case EventKind::kPerfEvent:
      return "perf_event";
    case EventKind::kRaplSample:
      return "rapl_sample";
    case EventKind::kThermalSample:
      return "thermal_sample";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kScanFinding:
      return "scan_finding";
    case EventKind::kContainerLifecycle:
      return "container_lifecycle";
    case EventKind::kCgroupMutation:
      return "cgroup_mutation";
  }
  return "?";
}

bool event_less(const Event& x, const Event& y) noexcept {
  if (x.time != y.time) return x.time < y.time;
  if (x.source != y.source) return x.source < y.source;
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

void EventBus::set_capacity(std::size_t per_lane) {
  capacity_ = round_up_pow2(per_lane > 0 ? per_lane : kDefaultCapacity);
  for (auto& lane : lanes_) {
    lane.ring.clear();
    lane.ring.shrink_to_fit();
    lane.size = 0;
    lane.next = 0;
    lane.dropped = 0;
  }
}

void EventBus::emit(EventKind kind, SimTime time, std::uint32_t source,
                    std::uint64_t a, std::uint64_t b) {
  auto& lane = lanes_[static_cast<std::size_t>(ThreadPool::current_lane())];
  if (lane.ring.empty()) lane.ring.resize(capacity_);
  lane.ring[lane.next] = Event{time, kind, source, a, b};
  lane.next = (lane.next + 1) & (capacity_ - 1);
  if (lane.size < capacity_) {
    ++lane.size;
  } else {
    ++lane.dropped;
    EventMetrics::get().dropped.inc();
  }
}

std::vector<Event> EventBus::drain() {
  std::vector<Event> events;
  for (auto& lane : lanes_) {
    if (lane.size == 0) continue;
    // Oldest-first within the lane: a full ring starts at the cursor.
    const std::size_t start =
        lane.size < capacity_ ? 0 : lane.next;
    for (std::size_t i = 0; i < lane.size; ++i) {
      events.push_back(lane.ring[(start + i) & (capacity_ - 1)]);
    }
    lane.size = 0;
    lane.next = 0;
    lane.dropped = 0;
  }
  std::sort(events.begin(), events.end(), event_less);
  return events;
}

std::uint64_t EventBus::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane.dropped;
  return total;
}

std::uint64_t EventBus::digest(const std::vector<Event>& events,
                               std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const auto& event : events) {
    fnv_u64(hash, event.time);
    fnv_u64(hash, static_cast<std::uint64_t>(event.kind));
    fnv_u64(hash, event.source);
    fnv_u64(hash, event.a);
    fnv_u64(hash, event.b);
  }
  return hash;
}

EventBus& EventBus::global() {
  static EventBus* instance = [] {
    auto* bus = new EventBus();
    if (const long parsed = env_long_or("CLEAKS_EVENTS", 0); parsed > 0) {
      if (parsed > 1) bus->set_capacity(static_cast<std::size_t>(parsed));
      bus->set_enabled(true);
    }
    return bus;
  }();
  return *instance;
}

}  // namespace cleaks::obs
