// Lane-sharded event bus: typed, fixed-size sim events in per-lane rings.
//
// The metrics registry answers "how much happened"; the span tracer answers
// "how long did phases take". This bus answers "what happened, when, to
// whom" — the streaming substrate for online consumers (windowed IDS
// aggregation, flight recording, Chrome-trace export; see obs/stream.h).
//
// Determinism contract (same as metrics/spans): every event is a pure
// function of simulated state — its timestamp is the sim clock and its
// `source` is a stable logical identity (server index, fnv of a path),
// never the execution lane. Which *lane ring* an event lands in is
// scheduling luck, so drain() merges the rings into one stream sorted by
// the event's full content (time, source, kind, payload); identical events
// are interchangeable, so the merged order — and its FNV digest — is
// bitwise-identical at every CLEAKS_THREADS count.
//
// Rings are power-of-two capacity and overwrite-oldest when full; drops
// are counted, never silent (`events_dropped_total`, Scope::kSim). The
// drop counter is lane-count-independent under the supported drain
// cadence: a consumer that drains at least once per ring capacity keeps it
// at zero, and single-lane producers (the throughput bench) wrap
// deterministically. Multi-lane emission *with* wraps splits drops by
// scheduling luck — don't run that configuration under a digest pin.
//
// Enabled via CLEAKS_EVENTS ("0"/unset = off, "1" = on with the default
// capacity, N>1 = on with per-lane capacity N rounded up to a power of
// two) or programmatically with set_enabled().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace cleaks::obs {

enum class EventKind : std::uint32_t {
  kCtxSwitch = 0,       ///< a: context switches this tick, b: migrations
  kPerfEvent,           ///< a: instructions retired this tick, b: busy µs
  kRaplSample,          ///< a: host power (mW), b: pkg0 energy counter (µJ)
  kThermalSample,       ///< a: hottest core (milli-°C), b: coolest core
  kFaultInjected,       ///< a: StatusCode injected, b: fault window index
  kScanFinding,         ///< a: LeakClass, b: degraded flag
  kContainerLifecycle,  ///< a: 1=create 0=destroy, b: fnv64(instance id)
  kCgroupMutation,      ///< a: field (see CgroupField), b: new value
};

inline constexpr std::size_t kNumEventKinds = 8;

/// kCgroupMutation payload `a`: which limit moved.
enum class CgroupField : std::uint64_t {
  kCpusetCpus = 1,
  kMemoryLimit = 2,
  kCpuQuota = 3,
  kPerfAccounting = 4,
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// One fixed-size (32-byte) telemetry record. Trivially copyable by
/// design: rings are flat arrays and the digest hashes raw fields.
struct Event {
  SimTime time = 0;          ///< sim clock at emission
  EventKind kind = EventKind::kCtxSwitch;
  std::uint32_t source = 0;  ///< stable logical origin (NOT the lane)
  std::uint64_t a = 0;       ///< kind-specific payload
  std::uint64_t b = 0;

  friend bool operator==(const Event& x, const Event& y) noexcept {
    return x.time == y.time && x.kind == y.kind && x.source == y.source &&
           x.a == y.a && x.b == y.b;
  }
};

/// Total order for the merged stream: (time, source, kind, a, b).
[[nodiscard]] bool event_less(const Event& x, const Event& y) noexcept;

class EventBus {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  ///< per lane
  /// Seed for digest chaining across drained batches.
  static constexpr std::uint64_t kDigestSeed = 1469598103934665603ULL;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-lane ring capacity, rounded up to a power of two (the cursor
  /// wraps with a mask, not a divide). Call while no events are in flight;
  /// discards buffered events.
  void set_capacity(std::size_t per_lane);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Record one event into the calling lane's ring. Wait-free with respect
  /// to other lanes (each lane owns its ring); overwrites the oldest entry
  /// and counts the drop when the ring is full. Callers gate on enabled()
  /// themselves so a disabled bus costs one relaxed load.
  void emit(EventKind kind, SimTime time, std::uint32_t source,
            std::uint64_t a = 0, std::uint64_t b = 0);

  /// Watermark merge: collect every lane's ring (each in insertion order up
  /// to its high-water mark), clear the rings, and return one stream in
  /// event_less order. Call while emission is quiescent (after a join).
  std::vector<Event> drain();

  /// Events overwritten because a ring wrapped, since the last drain.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// FNV-1a over a drained (sorted) batch, chained from `seed` so a
  /// per-step drain accumulates one digest for the whole run.
  [[nodiscard]] static std::uint64_t digest(const std::vector<Event>& events,
                                            std::uint64_t seed = kDigestSeed);

  /// Process-wide bus, configured from CLEAKS_EVENTS on first use.
  static EventBus& global();

 private:
  struct alignas(64) Lane {
    std::vector<Event> ring;  ///< allocated lazily on first emit
    std::size_t size = 0;     ///< filled entries (≤ capacity)
    std::size_t next = 0;     ///< insertion cursor
    std::uint64_t dropped = 0;
  };

  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = kDefaultCapacity;  ///< always a power of two
  std::array<Lane, ThreadPool::kMaxLanes> lanes_;
};

}  // namespace cleaks::obs
