#include "obs/stream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/export.h"
#include "util/env.h"

namespace cleaks::obs {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xff;
    hash *= kFnvPrime;
  }
}

/// Trace pid for the span ("engine") track; event sources are small
/// server/hash ids, so a large constant cannot collide.
constexpr std::uint64_t kEnginePid = 1000000;

double to_trace_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void flight_terminate_handler() {
  FlightRecorder::global().dump_to_file("fatal");
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

double WindowSummary::rate_per_s() const {
  const double seconds = to_seconds(end - start);
  return seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
}

WindowAggregator::WindowAggregator(SimDuration width)
    : width_(width > 0 ? width : kSecond) {}

void WindowAggregator::close_current() {
  if (!open_) return;
  windows_.push_back(current_);
  current_ = WindowSummary{};
  open_ = false;
}

void WindowAggregator::feed(const std::vector<Event>& merged) {
  for (const Event& event : merged) {
    const std::uint64_t index = event.time / width_;
    if (open_ && index != current_index_) close_current();
    if (!open_) {
      open_ = true;
      current_index_ = index;
      current_.start = index * width_;
      current_.end = (index + 1) * width_;
    }
    ++current_.total;
    ++current_.by_kind[static_cast<std::size_t>(event.kind)];
    auto it = std::lower_bound(
        current_.by_source.begin(), current_.by_source.end(), event.source,
        [](const auto& entry, std::uint32_t source) {
          return entry.first < source;
        });
    if (it != current_.by_source.end() && it->first == event.source) {
      ++it->second;
    } else {
      current_.by_source.insert(it, {event.source, 1});
    }
  }
}

void WindowAggregator::flush() { close_current(); }

std::uint64_t WindowAggregator::digest() const {
  std::uint64_t hash = EventBus::kDigestSeed;
  for (const WindowSummary& window : windows_) {
    fnv_u64(hash, window.start);
    fnv_u64(hash, window.end);
    fnv_u64(hash, window.total);
    for (const std::uint64_t count : window.by_kind) fnv_u64(hash, count);
    for (const auto& [source, count] : window.by_source) {
      fnv_u64(hash, source);
      fnv_u64(hash, count);
    }
  }
  return hash;
}

void FlightRecorder::feed(const std::vector<Event>& merged) {
  for (const Event& event : merged) {
    events_.push_back(event);
    latest_ = std::max(latest_, event.time);
  }
  while (!events_.empty() && latest_ >= keep_ &&
         events_.front().time < latest_ - keep_) {
    events_.pop_front();
  }
}

std::string FlightRecorder::dump_json() const {
  JsonWriter json;
  json.field("schema", kEventsSchema);
  json.field("window_ns", static_cast<std::uint64_t>(keep_));
  json.field("latest_ns", static_cast<std::uint64_t>(latest_));
  json.field("count", static_cast<std::uint64_t>(events_.size()));
  json.begin_array("events");
  for (const Event& event : events_) {
    json.begin_object();
    json.field("t", static_cast<std::uint64_t>(event.time));
    json.field("kind", to_string(event.kind));
    json.field("source", event.source);
    json.field("a", event.a);
    json.field("b", event.b);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

std::string FlightRecorder::dump_to_file(std::string_view tag) const {
  std::string path = bench_dir();
  path += "/FLIGHT_";
  path += tag;
  path += ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s\n", path.c_str());
    return {};
  }
  const std::string text = dump_json();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  std::fclose(file);
  return ok ? path : std::string{};
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = [] {
    auto* recorder = new FlightRecorder();
    if (const long parsed = env_long_or("CLEAKS_FLIGHT_RECORDER", 0);
        parsed > 0) {
      if (parsed > 1) {
        recorder->set_window(static_cast<SimDuration>(parsed) * kSecond);
      }
      recorder->set_enabled(true);
      g_previous_terminate = std::set_terminate(flight_terminate_handler);
    }
    return recorder;
  }();
  return *instance;
}

bool bench_check(bool ok, std::string_view tag, std::string_view what) {
  if (ok) return true;
  std::fprintf(stderr, "bench_check failed [%.*s]: %.*s\n",
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(what.size()), what.data());
  const FlightRecorder& recorder = FlightRecorder::global();
  if (recorder.enabled()) recorder.dump_to_file(tag);
  return false;
}

std::string to_chrome_trace(const std::vector<Event>& events,
                            const std::vector<Span>& spans) {
  JsonWriter json;
  json.field("displayTimeUnit", "ms");
  json.begin_array("traceEvents");

  // One process track per distinct source, named after it.
  std::vector<std::uint32_t> sources;
  for (const Event& event : events) sources.push_back(event.source);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  auto name_track = [&](std::uint64_t pid, const std::string& name) {
    json.begin_object();
    json.field("ph", "M");
    json.field("pid", pid);
    json.field("name", "process_name");
    json.begin_object("args").field("name", name).end_object();
    json.end_object();
  };
  for (const std::uint32_t source : sources) {
    name_track(source, "server-" + std::to_string(source));
  }
  if (!spans.empty()) name_track(kEnginePid, "engine");

  auto header = [&](const Event& event, std::string_view ph) {
    json.begin_object();
    json.field("ph", ph);
    json.field("pid", static_cast<std::uint64_t>(event.source));
    json.field("tid", 0);
    json.field("ts", to_trace_us(event.time));
    json.field("name", to_string(event.kind));
  };
  char id_buf[24];
  for (const Event& event : events) {
    switch (event.kind) {
      case EventKind::kCtxSwitch:
        header(event, "C");
        json.begin_object("args")
            .field("switches", event.a)
            .field("migrations", event.b)
            .end_object();
        break;
      case EventKind::kPerfEvent:
        header(event, "C");
        json.begin_object("args")
            .field("instructions", event.a)
            .field("busy_us", event.b)
            .end_object();
        break;
      case EventKind::kRaplSample:
        header(event, "C");
        json.begin_object("args")
            .field("power_mw", event.a)
            .field("pkg0_energy_uj", event.b)
            .end_object();
        break;
      case EventKind::kThermalSample:
        header(event, "C");
        json.begin_object("args")
            .field("max_milli_c", event.a)
            .field("min_milli_c", event.b)
            .end_object();
        break;
      case EventKind::kFaultInjected:
      case EventKind::kScanFinding:
      case EventKind::kCgroupMutation:
        header(event, "i");
        json.field("s", "p");  // process-scoped instant
        json.begin_object("args")
            .field("a", event.a)
            .field("b", event.b)
            .end_object();
        break;
      case EventKind::kContainerLifecycle:
        // Async slice spanning the container's life, keyed by the
        // instance-id hash so create/destroy pair up.
        header(event, event.a != 0 ? "b" : "e");
        json.field("cat", "container");
        std::snprintf(id_buf, sizeof id_buf, "0x%016llx",
                      static_cast<unsigned long long>(event.b));
        json.field("id", id_buf);
        break;
    }
    json.end_object();
  }

  for (const Span& span : spans) {
    json.begin_object();
    json.field("ph", "X");
    json.field("pid", kEnginePid);
    json.field("tid", 0);
    json.field("ts", to_trace_us(span.start));
    json.field("dur", to_trace_us(span.end - span.start));
    json.field("name", span.name);
    json.end_object();
  }

  json.end_array();
  return json.str();
}

}  // namespace cleaks::obs
