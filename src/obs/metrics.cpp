#include "obs/metrics.h"

#include <algorithm>

namespace cleaks::obs {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& hash, std::uint64_t value) {
  fnv_bytes(hash, &value, sizeof value);
}

}  // namespace

Histogram::Histogram(std::string name, std::string help, Scope scope,
                     std::vector<std::uint64_t> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      scope_(scope),
      bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t slots = bounds_.size() + 2;  // buckets + overflow + sum
  stride_ = (slots + 7) & ~std::size_t{7};       // cache-line multiple
  cells_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(ThreadPool::kMaxLanes) * stride_);
}

void Histogram::observe(std::uint64_t value) noexcept { observe_n(value, 1); }

void Histogram::observe_n(std::uint64_t value, std::uint64_t times) noexcept {
  if (times == 0) return;
  const auto lane = static_cast<std::size_t>(ThreadPool::current_lane());
  cells_[cell(lane, bucket_index(value))].fetch_add(times,
                                                    std::memory_order_relaxed);
  cells_[cell(lane, bounds_.size() + 1)].fetch_add(value * times,
                                                   std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return it == bounds_.end()
             ? bounds_.size()  // overflow
             : static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::add_bucket_counts(const std::uint64_t* slots,
                                  std::size_t n_slots, std::uint64_t sum,
                                  std::uint64_t times) noexcept {
  if (times == 0) return;
  const auto lane = static_cast<std::size_t>(ThreadPool::current_lane());
  const std::size_t limit = std::min(n_slots, bounds_.size() + 1);
  for (std::size_t slot = 0; slot < limit; ++slot) {
    if (slots[slot] == 0) continue;
    cells_[cell(lane, slot)].fetch_add(slots[slot] * times,
                                       std::memory_order_relaxed);
  }
  cells_[cell(lane, bounds_.size() + 1)].fetch_add(sum * times,
                                                   std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> merged(bounds_.size(), 0);
  for (std::size_t lane = 0; lane < ThreadPool::kMaxLanes; ++lane) {
    for (std::size_t b = 0; b < bounds_.size(); ++b) {
      merged[b] += cells_[cell(lane, b)].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::overflow() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t lane = 0; lane < ThreadPool::kMaxLanes; ++lane) {
    total += cells_[cell(lane, bounds_.size())].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t lane = 0; lane < ThreadPool::kMaxLanes; ++lane) {
    total +=
        cells_[cell(lane, bounds_.size() + 1)].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = overflow();
  for (auto count : counts()) total += count;
  return total;
}

void Histogram::reset() noexcept {
  for (auto& cell : cells_) cell.store(0, std::memory_order_relaxed);
}

std::uint64_t Snapshot::digest(Scope scope) const {
  std::uint64_t hash = kFnvOffset;
  for (const auto& metric : metrics) {
    if (metric.scope != scope) continue;
    fnv_bytes(hash, metric.name.data(), metric.name.size());
    fnv_u64(hash, static_cast<std::uint64_t>(metric.kind));
    switch (metric.kind) {
      case MetricValue::Kind::kCounter:
        fnv_u64(hash, metric.counter);
        break;
      case MetricValue::Kind::kGauge:
        fnv_bytes(hash, &metric.gauge, sizeof metric.gauge);
        break;
      case MetricValue::Kind::kHistogram:
        for (auto bound : metric.hist_bounds) fnv_u64(hash, bound);
        for (auto count : metric.hist_counts) fnv_u64(hash, count);
        fnv_u64(hash, metric.hist_overflow);
        fnv_u64(hash, metric.hist_sum);
        break;
    }
  }
  return hash;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Scope scope) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : counters_) {
    if (existing->name_ == name) return *existing;
  }
  counters_.push_back(std::unique_ptr<Counter>(new Counter(
      std::string(name), std::string(help), scope, /*per_lane=*/false)));
  return *counters_.back();
}

Counter& Registry::lane_counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : counters_) {
    if (existing->name_ == name) return *existing;
  }
  counters_.push_back(std::unique_ptr<Counter>(
      new Counter(std::string(name), std::string(help), Scope::kRuntime,
                  /*per_lane=*/true)));
  return *counters_.back();
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Scope scope) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : gauges_) {
    if (existing->name_ == name) return *existing;
  }
  gauges_.push_back(std::unique_ptr<Gauge>(
      new Gauge(std::string(name), std::string(help), scope)));
  return *gauges_.back();
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds,
                               std::string_view help, Scope scope) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : histograms_) {
    if (existing->name_ == name) return *existing;
  }
  histograms_.push_back(std::unique_ptr<Histogram>(new Histogram(
      std::string(name), std::string(help), scope, std::move(bounds))));
  return *histograms_.back();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& counter : counters_) {
    MetricValue value;
    value.name = counter->name_;
    value.help = counter->help_;
    value.scope = counter->scope_;
    value.kind = MetricValue::Kind::kCounter;
    value.counter = counter->value();
    if (counter->per_lane_) {
      for (int lane = 0; lane < ThreadPool::kMaxLanes; ++lane) {
        value.lanes.push_back(counter->lane_value(lane));
      }
      while (!value.lanes.empty() && value.lanes.back() == 0) {
        value.lanes.pop_back();
      }
    }
    snap.metrics.push_back(std::move(value));
  }
  for (const auto& gauge : gauges_) {
    MetricValue value;
    value.name = gauge->name_;
    value.help = gauge->help_;
    value.scope = gauge->scope_;
    value.kind = MetricValue::Kind::kGauge;
    value.gauge = gauge->value();
    snap.metrics.push_back(std::move(value));
  }
  for (const auto& histogram : histograms_) {
    MetricValue value;
    value.name = histogram->name_;
    value.help = histogram->help_;
    value.scope = histogram->scope_;
    value.kind = MetricValue::Kind::kHistogram;
    value.hist_bounds = histogram->bounds();
    value.hist_counts = histogram->counts();
    value.hist_overflow = histogram->overflow();
    value.hist_sum = histogram->sum();
    snap.metrics.push_back(std::move(value));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& counter : counters_) counter->reset();
  for (auto& gauge : gauges_) gauge->reset();
  for (auto& histogram : histograms_) histogram->reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace cleaks::obs
