// Deterministic metrics registry for the simulator's own telemetry.
//
// The paper's premise is that unguarded kernel telemetry becomes an attack
// surface; this module is the reproduction watching itself — counters,
// gauges and fixed-bucket histograms over the engine's hot paths
// (Datacenter::step, CrossValidator::scan, the pseudo-fs render cache).
//
// Determinism contract (the PR-1 invariant, extended to telemetry):
// metric values are *bitwise identical for every CLEAKS_THREADS value*.
// Two design rules make that hold without locks on the hot path:
//  * storage is sharded per thread-pool lane (ThreadPool::current_lane())
//    and merged in lane order on the caller thread at snapshot time;
//  * everything merged across shards is an unsigned integer (counter
//    increments, histogram bucket counts and sums), so the merge is a
//    commutative integer sum — the nondeterministic lane-to-chunk
//    assignment of the pool cannot show through. Gauges hold doubles but
//    are a single last-write slot, set with deterministically computed
//    values.
// Metrics whose values legitimately depend on the execution environment
// (lane counts, wall-clock timings) are tagged Scope::kRuntime and excluded
// from the determinism digest.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_pool.h"

namespace cleaks::obs {

/// kSim values derive purely from simulated state: identical across thread
/// counts and pinned by the determinism digest. kRuntime values (lane
/// utilization, anything wall-clock) may vary run to run.
enum class Scope { kSim, kRuntime };

/// Monotonic counter, lane-sharded. inc() is wait-free (one relaxed atomic
/// add on the calling lane's own cache line).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Shards merged in lane order (an integer sum, so the value is
  /// independent of which lane executed which chunk).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// One lane's contribution (utilization breakdowns; Scope::kRuntime).
  [[nodiscard]] std::uint64_t lane_value(int lane) const noexcept {
    return shards_[static_cast<std::size_t>(lane)].value.load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scope scope() const noexcept { return scope_; }

 private:
  friend class Registry;
  Counter(std::string name, std::string help, Scope scope, bool per_lane)
      : name_(std::move(name)),
        help_(std::move(help)),
        scope_(scope),
        per_lane_(per_lane) {}

  static std::size_t shard_index() noexcept {
    return static_cast<std::size_t>(ThreadPool::current_lane());
  }
  void reset() noexcept {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, ThreadPool::kMaxLanes> shards_{};
  std::string name_;
  std::string help_;
  Scope scope_;
  bool per_lane_;  ///< expose the per-lane breakdown in snapshots
};

/// Last-value gauge. set() must be called with deterministically computed
/// values for Scope::kSim gauges; the store itself is atomic so concurrent
/// readers (e.g. a /proc/containerleaks render mid-scan) are race-free.
class Gauge {
 public:
  void set(double value) noexcept {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof value);
    __builtin_memcpy(&bits, &value, sizeof bits);
    bits_.store(bits, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    __builtin_memcpy(&value, &bits, sizeof value);
    return value;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scope scope() const noexcept { return scope_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::string help, Scope scope)
      : name_(std::move(name)), help_(std::move(help)), scope_(scope) {}
  void reset() noexcept { set(0.0); }

  std::atomic<std::uint64_t> bits_{0};
  std::string name_;
  std::string help_;
  Scope scope_;
};

/// Fixed-bucket histogram over unsigned integer observations (sim-time
/// durations in ns, power in mW, ...). Integer-only state keeps the
/// lane-shard merge deterministic; callers quantize doubles before
/// observing (the quantization itself is deterministic on bitwise-identical
/// inputs).
class Histogram {
 public:
  void observe(std::uint64_t value) noexcept;
  /// `times` observes of the same value in O(1): everything merged is an
  /// unsigned integer, so one count/sum add of n is bitwise-identical to n
  /// individual observe() calls — the property the O(active) facility
  /// aggregation leans on for parked-server telemetry.
  void observe_n(std::uint64_t value, std::uint64_t times) noexcept;
  /// The slot observe(value) would increment: a bucket index, or
  /// bounds().size() for overflow. Callers maintaining external per-slot
  /// tallies (edge-triggered aggregates) use this to stay bit-compatible.
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const noexcept;
  /// Fold externally-tallied observations in: `slots[i]` observations per
  /// slot (bounds().size() + 1 entries, overflow last) and their value
  /// `sum`, each applied `times` times. Equivalent to — and bitwise
  /// indistinguishable from — replaying every individual observe().
  void add_bucket_counts(const std::uint64_t* slots, std::size_t n_slots,
                         std::uint64_t sum, std::uint64_t times = 1) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Merged per-bucket counts (bounds().size() entries, non-cumulative).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t overflow() const noexcept;  ///< > last bound
  [[nodiscard]] std::uint64_t sum() const noexcept;
  [[nodiscard]] std::uint64_t total_count() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scope scope() const noexcept { return scope_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::string help, Scope scope,
            std::vector<std::uint64_t> bounds);
  void reset() noexcept;

  // Cell layout per lane: [0..B-1] bucket counts, [B] overflow, [B+1] sum;
  // the stride is padded to a cache-line multiple to keep lanes from
  // false-sharing.
  [[nodiscard]] std::size_t cell(std::size_t lane,
                                 std::size_t slot) const noexcept {
    return lane * stride_ + slot;
  }

  std::string name_;
  std::string help_;
  Scope scope_;
  std::vector<std::uint64_t> bounds_;  ///< ascending inclusive upper bounds
  std::size_t stride_;
  std::vector<std::atomic<std::uint64_t>> cells_;
};

/// One metric, merged, as it appears in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Scope scope = Scope::kSim;
  Kind kind = Kind::kCounter;

  std::uint64_t counter = 0;
  std::vector<std::uint64_t> lanes;  ///< per-lane counts (lane counters only)
  double gauge = 0.0;

  std::vector<std::uint64_t> hist_bounds;
  std::vector<std::uint64_t> hist_counts;
  std::uint64_t hist_overflow = 0;
  std::uint64_t hist_sum = 0;
};

/// A point-in-time merged view of a registry, sorted by metric name.
struct Snapshot {
  std::vector<MetricValue> metrics;

  /// FNV-1a over every metric of `scope` (name, kind and merged value
  /// bytes; per-lane breakdowns excluded). The kSim digest is the value the
  /// determinism tests pin across CLEAKS_THREADS=1/2/4/8.
  [[nodiscard]] std::uint64_t digest(Scope scope) const;
};

/// Named metric families with stable addresses: handles returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime
/// (reset() zeroes values in place, it never invalidates handles), so
/// instrumentation sites cache them in static references.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. help/scope are fixed by the first caller.
  Counter& counter(std::string_view name, std::string_view help = "",
                   Scope scope = Scope::kSim);
  /// Counter whose per-lane breakdown is exported (lane utilization);
  /// always Scope::kRuntime — the breakdown depends on chunk claiming.
  Counter& lane_counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "",
               Scope scope = Scope::kSim);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds,
                       std::string_view help = "",
                       Scope scope = Scope::kSim);

  /// Merged view. Safe to call while other threads are incrementing
  /// (relaxed atomics); deterministic when the system is quiescent.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every value in place; handles stay valid.
  void reset();

  /// The process-wide registry every instrumentation site uses.
  static Registry& global();

 private:
  mutable std::mutex mu_;  ///< guards the vectors during registration
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cleaks::obs
