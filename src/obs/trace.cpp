#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "util/env.h"

namespace cleaks::obs {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

}  // namespace

void SpanTracer::set_capacity(std::size_t per_lane) {
  capacity_ = per_lane > 0 ? per_lane : kDefaultCapacity;
  for (auto& lane : lanes_) {
    lane.ring.clear();
    lane.ring.shrink_to_fit();
    lane.next = 0;
    lane.dropped = 0;
  }
}

void SpanTracer::record(std::string_view name, SimTime start, SimTime end) {
  if (!enabled()) return;
  auto& lane = lanes_[static_cast<std::size_t>(ThreadPool::current_lane())];
  Span span{std::string(name), start, end};
  if (lane.ring.size() < capacity_) {
    lane.ring.push_back(std::move(span));
  } else {
    lane.ring[lane.next % capacity_] = std::move(span);
    ++lane.dropped;
  }
  ++lane.next;
}

std::vector<Span> SpanTracer::drain() {
  std::vector<Span> spans;
  for (auto& lane : lanes_) {
    spans.insert(spans.end(), std::make_move_iterator(lane.ring.begin()),
                 std::make_move_iterator(lane.ring.end()));
    lane.ring.clear();
    lane.next = 0;
    lane.dropped = 0;
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.name < b.name;
  });
  return spans;
}

std::uint64_t SpanTracer::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane.dropped;
  return total;
}

std::uint64_t SpanTracer::digest(const std::vector<Span>& spans) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& span : spans) {
    fnv_bytes(hash, span.name.data(), span.name.size());
    fnv_bytes(hash, &span.start, sizeof span.start);
    fnv_bytes(hash, &span.end, sizeof span.end);
  }
  return hash;
}

SpanTracer& SpanTracer::global() {
  static SpanTracer* instance = [] {
    auto* tracer = new SpanTracer();
    if (const long parsed = env_long_or("CLEAKS_TRACE", 0); parsed > 0) {
      if (parsed > 1) tracer->set_capacity(static_cast<std::size_t>(parsed));
      tracer->set_enabled(true);
    }
    return tracer;
  }();
  return *instance;
}

}  // namespace cleaks::obs
