// Exporters: the single schema behind every bench emission, plus a
// Prometheus-style text renderer for the self-telemetry pseudo-file.
//
// Every bench writes BENCH_<name>.json through BenchReport, so the perf
// trajectory accumulates in one place with one envelope:
//
//   {
//     "schema": "cleaks-bench-v1",
//     "bench": "<name>",
//     "data": { ... bench-specific payload ... },
//     "metrics": {
//       "schema": "cleaks-metrics-v1",
//       "sim_digest": "<hex>",          // determinism digest (kSim scope)
//       "counters": {...}, "gauges": {...}, "histograms": {...},
//       "lane_counters": {...}          // runtime-scope lane breakdowns
//     }
//   }
//
// Output directory: $CLEAKS_BENCH_DIR if set, else the repo root baked in
// at configure time (so runs from any build directory accumulate at the
// repo root), else the current directory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace cleaks::obs {

inline constexpr std::string_view kBenchSchema = "cleaks-bench-v1";
inline constexpr std::string_view kMetricsSchema = "cleaks-metrics-v1";

/// Directory BENCH_*.json files land in (no trailing slash).
std::string bench_dir();
/// bench_dir() + "/BENCH_<bench_name>.json".
std::string bench_output_path(std::string_view bench_name);

/// Minimal streaming JSON writer: handles commas, nesting and string
/// escaping so benches can't emit malformed files. Keys are only passed
/// inside objects; elements inside arrays take no key.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object(std::string_view key = {});
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();

  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonWriter& field(std::string_view key, unsigned value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  JsonWriter& field(std::string_view key, bool value);

  JsonWriter& element(std::string_view value) { return field({}, value); }
  JsonWriter& element(double value) { return field({}, value); }
  JsonWriter& element(std::uint64_t value) { return field({}, value); }
  JsonWriter& element(std::int64_t value) { return field({}, value); }
  JsonWriter& element(int value) { return field({}, value); }

  /// The document so far. Well-formed once nesting is balanced back to the
  /// root (the writer opens the root object itself).
  [[nodiscard]] const std::string& str();

 private:
  void comma();
  void key(std::string_view key);
  void escape(std::string_view text);

  std::string out_;
  std::vector<bool> needs_comma_;  ///< one flag per open scope
  bool closed_ = false;
};

/// Append the snapshot as the "metrics" member of the currently open
/// object (the cleaks-metrics-v1 sub-schema above).
void append_metrics_json(const Snapshot& snapshot, JsonWriter& writer);

/// Prometheus text exposition of a snapshot. Metric names are prefixed
/// (default "cleaks_"); lane counters render with {lane="N"} labels and
/// histograms with cumulative {le="..."} buckets.
std::string to_prometheus(const Snapshot& snapshot,
                          std::string_view prefix = "cleaks_");

/// The shared bench emitter. Construct, fill json() with the bench's
/// payload fields (the writer is already positioned inside "data"), then
/// write(). The envelope, registry snapshot and output path are handled
/// here so every bench stays schema-conformant.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  [[nodiscard]] JsonWriter& json() noexcept { return writer_; }

  /// Close "data", append `registry`'s snapshot, write the file. Returns
  /// the output path, or "" on I/O failure. Call once.
  std::string write(const Registry& registry = Registry::global());

 private:
  std::string name_;
  JsonWriter writer_;
  bool written_ = false;
};

}  // namespace cleaks::obs
