#include "obs/export.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cleaks::obs {
namespace {

// Local printf-append helper: obs sits below cleaks_util in the link
// order (the thread pool itself is instrumented), so it cannot use
// util/strings' strappendf.
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

// Prometheus exposition values: the format spells non-finite floats
// "NaN", "+Inf" and "-Inf" — printf's "nan"/"inf" is rejected by
// conforming parsers.
void append_prom_double(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
  } else if (std::isinf(value)) {
    out += value > 0.0 ? "+Inf" : "-Inf";
  } else {
    appendf(out, "%.9g", value);
  }
}

// HELP text escaping per the exposition format: backslash and line feed
// are the only escapes (label values would additionally escape '"').
void append_prom_help(std::string& out, std::string_view help) {
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string bench_dir() {
  if (const char* env = std::getenv("CLEAKS_BENCH_DIR")) {
    if (env[0] != '\0') return env;
  }
#ifdef CLEAKS_REPO_ROOT
  return CLEAKS_REPO_ROOT;
#else
  return ".";
#endif
}

std::string bench_output_path(std::string_view bench_name) {
  std::string path = bench_dir();
  path += "/BENCH_";
  path += bench_name;
  path += ".json";
  return path;
}

JsonWriter::JsonWriter() {
  out_ = "{";
  needs_comma_.push_back(false);
}

void JsonWriter::comma() {
  if (needs_comma_.back()) out_ += ",";
  needs_comma_.back() = true;
  out_ += "\n";
  out_.append(2 * needs_comma_.size(), ' ');
}

void JsonWriter::key(std::string_view name) {
  comma();
  if (!name.empty()) {
    out_ += '"';
    escape(name);
    out_ += "\": ";
  }
}

void JsonWriter::escape(std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out_, "\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::begin_object(std::string_view name) {
  key(name);
  out_ += "{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) {
    out_ += "\n";
    out_.append(2 * needs_comma_.size(), ' ');
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view name) {
  key(name);
  out_ += "[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) {
    out_ += "\n";
    out_.append(2 * needs_comma_.size(), ' ');
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view value) {
  key(name);
  out_ += '"';
  escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, double value) {
  key(name);
  appendf(out_, "%.9g", value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::uint64_t value) {
  key(name);
  appendf(out_, "%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::int64_t value) {
  key(name);
  appendf(out_, "%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, bool value) {
  key(name);
  out_ += value ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() {
  if (!closed_ && needs_comma_.size() == 1) {
    out_ += "\n}\n";
    closed_ = true;
  }
  return out_;
}

void append_metrics_json(const Snapshot& snapshot, JsonWriter& writer) {
  writer.begin_object("metrics");
  writer.field("schema", kMetricsSchema);
  char digest[24];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(
                    snapshot.digest(Scope::kSim)));
  writer.field("sim_digest", digest);

  writer.begin_object("counters");
  for (const auto& metric : snapshot.metrics) {
    if (metric.kind != MetricValue::Kind::kCounter || !metric.lanes.empty()) {
      continue;
    }
    writer.field(metric.name, metric.counter);
  }
  writer.end_object();

  writer.begin_object("gauges");
  for (const auto& metric : snapshot.metrics) {
    if (metric.kind != MetricValue::Kind::kGauge) continue;
    writer.field(metric.name, metric.gauge);
  }
  writer.end_object();

  writer.begin_object("histograms");
  for (const auto& metric : snapshot.metrics) {
    if (metric.kind != MetricValue::Kind::kHistogram) continue;
    writer.begin_object(metric.name);
    writer.begin_array("bounds");
    for (auto bound : metric.hist_bounds) writer.element(bound);
    writer.end_array();
    writer.begin_array("counts");
    for (auto count : metric.hist_counts) writer.element(count);
    writer.end_array();
    writer.field("overflow", metric.hist_overflow);
    writer.field("sum", metric.hist_sum);
    writer.end_object();
  }
  writer.end_object();

  writer.begin_object("lane_counters");
  for (const auto& metric : snapshot.metrics) {
    if (metric.kind != MetricValue::Kind::kCounter || metric.lanes.empty()) {
      continue;
    }
    writer.begin_array(metric.name);
    for (auto count : metric.lanes) writer.element(count);
    writer.end_array();
  }
  writer.end_object();

  writer.end_object();
}

std::string to_prometheus(const Snapshot& snapshot, std::string_view prefix) {
  std::string out;
  const std::string p(prefix);
  for (const auto& metric : snapshot.metrics) {
    const std::string name = p + metric.name;
    if (!metric.help.empty()) {
      out += "# HELP " + name + " ";
      append_prom_help(out, metric.help);
      out += "\n";
    }
    switch (metric.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        if (metric.lanes.empty()) {
          appendf(out, "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(metric.counter));
        } else {
          for (std::size_t lane = 0; lane < metric.lanes.size(); ++lane) {
            appendf(out, "%s{lane=\"%zu\"} %llu\n", name.c_str(), lane,
                    static_cast<unsigned long long>(metric.lanes[lane]));
          }
        }
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name;
        out += ' ';
        append_prom_double(out, metric.gauge);
        out += '\n';
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < metric.hist_bounds.size(); ++b) {
          cumulative += metric.hist_counts[b];
          appendf(out, "%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
                  static_cast<unsigned long long>(metric.hist_bounds[b]),
                  static_cast<unsigned long long>(cumulative));
        }
        cumulative += metric.hist_overflow;
        appendf(out, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                static_cast<unsigned long long>(cumulative));
        appendf(out, "%s_sum %llu\n", name.c_str(),
                static_cast<unsigned long long>(metric.hist_sum));
        appendf(out, "%s_count %llu\n", name.c_str(),
                static_cast<unsigned long long>(cumulative));
        break;
      }
    }
  }
  return out;
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {
  writer_.field("schema", kBenchSchema);
  writer_.field("bench", name_);
  writer_.begin_object("data");
}

std::string BenchReport::write(const Registry& registry) {
  if (written_) return {};
  written_ = true;
  writer_.end_object();  // data
  append_metrics_json(registry.snapshot(), writer_);
  const std::string path = bench_output_path(name_);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s\n", path.c_str());
    return {};
  }
  const std::string& text = writer_.str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) ==
                  text.size();
  std::fclose(file);
  return ok ? path : std::string{};
}

}  // namespace cleaks::obs
