// §IV-B: reduction of attack costs under utilization-based billing.
//
// Three attackers with the same goal — land power spikes on a host — are
// billed by the provider's meter over a two-hour engagement:
//   continuous  : power virus runs non-stop (catches every crest, costs a
//                 fortune, maximally conspicuous);
//   periodic    : spike every 300 s;
//   synergistic : monitors the leaked RAPL channel (near-zero CPU) and
//                 spikes only on benign crests.
//
// All three runs are the same declarative scenario with a different
// attack strategy; the provider's 1-arg launch (default container) keeps
// the billed vCPU reservation identical across strategies.
//
// Paper reference points: VMware OnDemand charges $2.87/month for a
// 16-vCPU instance at 1% utilization vs $167.25 at 100% — the continuous
// attacker pays the full-utilization price, the synergistic attacker pays
// roughly the monitoring-only price.
#include <algorithm>
#include <cstdio>

#include "obs/export.h"
#include "sim/engine.h"

using namespace cleaks;

namespace {

struct CostResult {
  double cost_usd = 0.0;
  double cpu_hours = 0.0;
  int spikes = 0;
  double peak_w = 0.0;
};

CostResult run(attack::StrategyKind kind, obs::JsonWriter& json) {
  sim::ScenarioSpec spec;
  spec.name = "costs-" + attack::to_string(kind);
  spec.datacenter.servers_per_rack = 4;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 515;
  sim::ProviderSpec provider;
  provider.seed = 616;
  spec.provider = provider;
  spec.fleet.placement = sim::FleetSpec::Placement::kProviderLaunch;
  spec.fleet.count = 1;
  spec.fleet.tenant = "attacker";
  spec.fleet.attackers = true;
  spec.fleet.attack.kind = kind;
  spec.fleet.attack.period = 300 * kSecond;
  spec.fleet.attack.spike_duration = 15 * kSecond;
  spec.fleet.attack.min_history = 300;
  spec.fleet.attack.trigger_percentile = 95.0;
  spec.fleet.attack.trigger_margin = 0.05;
  spec.fleet.attack.cooldown = 600 * kSecond;
  spec.fleet.control = sim::FleetSpec::Control::kAutonomous;
  sim::SimEngine engine(spec);

  CostResult result;
  const int server_index = engine.fleet_server_index(0);
  engine.run_steps(
      7200, kSecond,
      [&](sim::SimEngine& e, const sim::StepContext&) {
        result.peak_w = std::max(result.peak_w, e.server_power_w(server_index));
      },
      "engagement");
  const sim::SimEngine::BillingProbe bill = engine.billing_probe("attacker");
  result.cost_usd = bill.cost_usd;
  result.cpu_hours = bill.cpu_hours;
  result.spikes = engine.attacker(0).stats().spikes_launched;

  json.begin_object(attack::to_string(kind));
  engine.append_report_json(json);
  json.field("cost_usd", result.cost_usd)
      .field("cpu_hours", result.cpu_hours)
      .field("peak_server_w", result.peak_w)
      .end_object();
  return result;
}

}  // namespace

int main() {
  std::printf("== attack cost under utilization billing (2 h engagement) ==\n\n");
  obs::BenchReport report("costs_attack_billing");
  const auto continuous = run(attack::StrategyKind::kContinuous, report.json());
  const auto periodic = run(attack::StrategyKind::kPeriodic, report.json());
  const auto synergistic =
      run(attack::StrategyKind::kSynergistic, report.json());

  std::printf("  strategy     cost_usd  cpu_hours  spikes  peak_W\n");
  auto row = [](const char* name, const CostResult& r) {
    std::printf("  %-12s %8.4f  %9.2f  %6d  %6.0f\n", name, r.cost_usd,
                r.cpu_hours, r.spikes, r.peak_w);
  };
  row("continuous", continuous);
  row("periodic", periodic);
  row("synergistic", synergistic);

  const double saving_vs_continuous =
      continuous.cost_usd > 0
          ? (1.0 - synergistic.cost_usd / continuous.cost_usd) * 100.0
          : 0.0;
  const double saving_vs_periodic =
      periodic.cost_usd > 0
          ? (1.0 - synergistic.cost_usd / periodic.cost_usd) * 100.0
          : 0.0;
  std::printf("\nsynergistic saves %.1f%% vs continuous, %.1f%% vs periodic\n",
              saving_vs_continuous, saving_vs_periodic);
  std::printf(
      "paper: monitoring via RAPL has almost zero CPU utilization; the "
      "synergistic attack achieves the same spike heights at a fraction of "
      "the cost\n");
  const bool shape_holds = synergistic.cost_usd < periodic.cost_usd &&
                           periodic.cost_usd < continuous.cost_usd &&
                           synergistic.peak_w >= periodic.peak_w * 0.95;
  std::printf("shape holds (cost: synergistic < periodic < continuous, "
              "comparable peaks): %s\n",
              shape_holds ? "YES" : "NO");

  report.json()
      .field("saving_vs_continuous_pct", saving_vs_continuous)
      .field("saving_vs_periodic_pct", saving_vs_periodic)
      .field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
