// §IV-B: reduction of attack costs under utilization-based billing.
//
// Three attackers with the same goal — land power spikes on a host — are
// billed by the provider's meter over a two-hour engagement:
//   continuous  : power virus runs non-stop (catches every crest, costs a
//                 fortune, maximally conspicuous);
//   periodic    : spike every 300 s;
//   synergistic : monitors the leaked RAPL channel (near-zero CPU) and
//                 spikes only on benign crests.
//
// Paper reference points: VMware OnDemand charges $2.87/month for a
// 16-vCPU instance at 1% utilization vs $167.25 at 100% — the continuous
// attacker pays the full-utilization price, the synergistic attacker pays
// roughly the monitoring-only price.
#include <cstdio>

#include "attack/strategy.h"
#include "cloud/datacenter.h"
#include "cloud/provider.h"

using namespace cleaks;

namespace {

struct CostResult {
  double cost_usd = 0.0;
  double cpu_hours = 0.0;
  int spikes = 0;
  double peak_w = 0.0;
};

CostResult run(attack::StrategyKind kind) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = true;
  config.seed = 515;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 616);

  auto instance = provider.launch("attacker");
  attack::AttackConfig attack_config;
  attack_config.kind = kind;
  attack_config.period = 300 * kSecond;
  attack_config.spike_duration = 15 * kSecond;
  attack_config.min_history = 300;
  attack_config.trigger_percentile = 95.0;
  attack_config.trigger_margin = 0.05;
  attack_config.cooldown = 600 * kSecond;
  attack::PowerAttacker attacker(*instance->handle, attack_config);

  CostResult result;
  auto& server = dc.server(instance->server_index);
  for (int second = 0; second < 7200; ++second) {
    provider.step(kSecond);
    attacker.step(dc.now(), kSecond);
    result.peak_w = std::max(result.peak_w, server.power_w());
  }
  result.cost_usd = provider.billing().total_cost("attacker");
  result.cpu_hours = provider.billing().cpu_hours("attacker");
  result.spikes = attacker.stats().spikes_launched;
  return result;
}

}  // namespace

int main() {
  std::printf("== attack cost under utilization billing (2 h engagement) ==\n\n");
  const auto continuous = run(attack::StrategyKind::kContinuous);
  const auto periodic = run(attack::StrategyKind::kPeriodic);
  const auto synergistic = run(attack::StrategyKind::kSynergistic);

  std::printf("  strategy     cost_usd  cpu_hours  spikes  peak_W\n");
  auto row = [](const char* name, const CostResult& r) {
    std::printf("  %-12s %8.4f  %9.2f  %6d  %6.0f\n", name, r.cost_usd,
                r.cpu_hours, r.spikes, r.peak_w);
  };
  row("continuous", continuous);
  row("periodic", periodic);
  row("synergistic", synergistic);

  const double saving_vs_continuous =
      continuous.cost_usd > 0
          ? (1.0 - synergistic.cost_usd / continuous.cost_usd) * 100.0
          : 0.0;
  const double saving_vs_periodic =
      periodic.cost_usd > 0
          ? (1.0 - synergistic.cost_usd / periodic.cost_usd) * 100.0
          : 0.0;
  std::printf("\nsynergistic saves %.1f%% vs continuous, %.1f%% vs periodic\n",
              saving_vs_continuous, saving_vs_periodic);
  std::printf(
      "paper: monitoring via RAPL has almost zero CPU utilization; the "
      "synergistic attack achieves the same spike heights at a fraction of "
      "the cost\n");
  const bool shape_holds = synergistic.cost_usd < periodic.cost_usd &&
                           periodic.cost_usd < continuous.cost_usd &&
                           synergistic.peak_w >= periodic.peak_w * 0.95;
  std::printf("shape holds (cost: synergistic < periodic < continuous, "
              "comparable peaks): %s\n",
              shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
