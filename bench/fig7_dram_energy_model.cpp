// Fig 7: the relation between DRAM energy and the number of LLC cache
// misses, for the same workloads and configuration as Fig 6.
//
// Paper headline: the number of cache misses is approximately linear to
// the DRAM energy — a single linear regression on cache misses suffices
// for the DRAM model.
#include <cstdio>

#include "defense/trainer.h"
#include "obs/export.h"
#include "util/regression.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== Fig 7: DRAM energy vs cache misses ==\n\n");
  std::printf("workload,cache_misses,dram_energy_j\n");

  // One pooled regression across all workloads: Fig 7's claim is that a
  // single line fits regardless of the benchmark.
  std::vector<std::vector<double>> features;
  std::vector<double> energy;

  for (const auto& profile : workload::training_set()) {
    kernel::Host host("fig7", hw::testbed_i7_6700(),
                      2000 + fnv1a64(profile.name) % 1000);
    host.set_tick_duration(100 * kMillisecond);
    defense::TrainerOptions options;
    options.duty_levels = {0.25, 0.5, 0.75, 1.0};
    options.samples_per_level = 6;
    const auto samples =
        defense::collect_training_samples(host, {profile}, options);
    for (const auto& sample : samples) {
      std::printf("%s,%.4e,%.3f\n", profile.name.c_str(),
                  sample.perf.cache_misses, sample.dram_j);
      features.push_back({sample.perf.cache_misses, 1.0});
      energy.push_back(sample.dram_j);
    }
  }

  auto fit = fit_ols(features, energy);
  if (!fit.is_ok()) {
    std::printf("regression failed: %s\n", fit.status().to_string().c_str());
    return 1;
  }
  const double slope_nj = fit.value().coefficients[0] * 1e9;
  const double intercept_w = fit.value().coefficients[1];
  std::printf("\npooled linear fit across all workloads:\n");
  std::printf("  slope     : %.2f nJ per cache miss\n", slope_nj);
  std::printf("  intercept : %.2f J/sample (DRAM background)\n", intercept_w);
  std::printf("  R^2       : %.4f\n", fit.value().r2);
  std::printf(
      "\npaper: cache misses approximately linear to DRAM energy (one line "
      "for all benchmarks)\n");

  obs::BenchReport report("fig7_dram_energy_model");
  report.json()
      .field("slope_nj_per_miss", slope_nj)
      .field("intercept_j", intercept_w)
      .field("r2", fit.value().r2)
      .field("pass", fit.value().r2 > 0.95);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return fit.value().r2 > 0.95 ? 0 : 1;
}
