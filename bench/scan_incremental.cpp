// Incremental-scan benchmark (PR 5): one cold CrossValidator::scan versus
// ten warm re-scans — five on an untouched world, five after small
// perturbations (a 1 s server step each) — at 1/2/4/8 execution lanes.
//
// Asserted, not just reported:
//   * an unchanged-world warm re-scan does ZERO container-context renders
//     for cache-eligible paths (the viewer-cache hit/miss counters both
//     stand still: reuse happens above the filesystem, not through it)
//     while scan_renders_avoided_total advances;
//   * warm unchanged re-scans are faster than the cold scan at every lane
//     count (they skip renders, diffs and every perturbation epoch);
//   * the FNV digest over all eleven scans' findings is identical at every
//     lane count — the incremental pipeline keeps the bitwise determinism
//     contract, warm or cold, perturbed or not.
// Emits BENCH_scan_incremental.json through the cleaks-bench-v1 exporter.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/server.h"
#include "leakage/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace cleaks;

namespace {

constexpr int kWarmScans = 10;      // 5 unchanged + 5 perturbed
constexpr int kUnchangedScans = 5;

struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_string(const std::string& text) { add(text.data(), text.size()); }
};

struct Run {
  int threads = 0;
  double cold_seconds = 0.0;
  double warm_unchanged_seconds = 0.0;  // mean over the unchanged re-scans
  double warm_perturbed_seconds = 0.0;  // mean over the perturbed re-scans
  std::uint64_t renders_avoided = 0;    // delta across all warm re-scans
  std::uint64_t paths_reused = 0;       // delta across all warm re-scans
  bool zero_rerenders = true;  // viewer cache untouched while unchanged
  std::uint64_t digest = 0;    // over all 11 scans' findings
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Run bench_incremental(int threads) {
  auto& registry = obs::Registry::global();
  obs::Counter& avoided = registry.counter("scan_renders_avoided_total");
  obs::Counter& reused = registry.counter("scan_paths_reused_total");
  obs::Counter& viewer_hits = registry.counter("fs_viewer_cache_hits_total");
  obs::Counter& viewer_misses =
      registry.counter("fs_viewer_cache_misses_total");

  cloud::Server server("inc-host", cloud::local_testbed(), 77, 40 * kDay);
  leakage::ScanOptions options;
  options.num_threads = threads;
  leakage::CrossValidator validator(server, options);

  Run run;
  run.threads = threads;
  Digest digest;
  auto digest_findings = [&digest](
                             const std::vector<leakage::FileFinding>& found) {
    for (const auto& finding : found) {
      digest.add_string(finding.path);
      digest.add_string(leakage::to_string(finding.cls));
      const unsigned char degraded = finding.degraded ? 1 : 0;
      digest.add(&degraded, 1);
    }
  };

  double start = now_seconds();
  digest_findings(validator.scan());  // cold: full protocol
  run.cold_seconds = now_seconds() - start;

  const std::uint64_t avoided_before = avoided.value();
  const std::uint64_t reused_before = reused.value();
  for (int i = 0; i < kWarmScans; ++i) {
    const bool perturb = i >= kUnchangedScans;
    if (perturb) server.step(kSecond);
    const std::uint64_t hits_before = viewer_hits.value();
    const std::uint64_t misses_before = viewer_misses.value();
    start = now_seconds();
    digest_findings(validator.scan());
    const double elapsed = now_seconds() - start;
    if (perturb) {
      run.warm_perturbed_seconds += elapsed / kUnchangedScans;
    } else {
      run.warm_unchanged_seconds += elapsed / kUnchangedScans;
      // The acceptance bit: an unchanged warm re-scan never even consults
      // the viewer cache for eligible paths — no hits, no misses, no
      // container-context renders at all.
      if (viewer_hits.value() != hits_before ||
          viewer_misses.value() != misses_before) {
        run.zero_rerenders = false;
      }
    }
  }
  run.renders_avoided = avoided.value() - avoided_before;
  run.paths_reused = reused.value() - reused_before;
  run.digest = digest.hash;
  return run;
}

}  // namespace

int main() {
  std::printf("== incremental scan: cold vs %d warm re-scans ==\n\n",
              kWarmScans);
  std::vector<Run> runs;
  for (int threads : {1, 2, 4, 8}) {
    runs.push_back(bench_incremental(threads));
  }

  bool identical = true;
  bool warm_faster = true;
  bool zero_rerenders = true;
  bool avoided_renders = true;
  obs::BenchReport report("scan_incremental");
  report.json().field("warm_scans", kWarmScans);
  report.json().field("unchanged_scans", kUnchangedScans);
  report.json().begin_array("runs");
  for (const auto& run : runs) {
    std::printf(
        "  %d lane(s): cold %8.2f ms  warm-unchanged %8.3f ms  "
        "warm-perturbed %8.2f ms  avoided %llu  reused %llu  digest %016llx\n",
        run.threads, run.cold_seconds * 1e3,
        run.warm_unchanged_seconds * 1e3, run.warm_perturbed_seconds * 1e3,
        (unsigned long long)run.renders_avoided,
        (unsigned long long)run.paths_reused,
        (unsigned long long)run.digest);
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)run.digest);
    report.json()
        .begin_object()
        .field("threads", run.threads)
        .field("cold_seconds", run.cold_seconds)
        .field("warm_unchanged_seconds", run.warm_unchanged_seconds)
        .field("warm_perturbed_seconds", run.warm_perturbed_seconds)
        .field("renders_avoided", run.renders_avoided)
        .field("paths_reused", run.paths_reused)
        .field("zero_rerenders_while_unchanged", run.zero_rerenders)
        .field("digest", digest_hex)
        .end_object();
    if (run.digest != runs[0].digest) identical = false;
    if (run.warm_unchanged_seconds >= run.cold_seconds) warm_faster = false;
    if (!run.zero_rerenders) zero_rerenders = false;
    if (run.renders_avoided == 0) avoided_renders = false;
  }
  report.json().end_array();
  report.json().field("identical_across_threads", identical);
  report.json().field("warm_faster_than_cold", warm_faster);
  report.json().field("zero_rerenders_while_unchanged", zero_rerenders);
  report.json().field("renders_avoided_positive", avoided_renders);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  const bool ok =
      identical && warm_faster && zero_rerenders && avoided_renders;
  std::printf("\nidentical across lanes: %s  warm<cold: %s  "
              "zero rerenders unchanged: %s  renders avoided: %s\n",
              identical ? "yes" : "NO", warm_faster ? "yes" : "NO",
              zero_rerenders ? "yes" : "NO", avoided_renders ? "yes" : "NO");
  std::printf("wrote %s\n", path.c_str());
  return ok ? 0 : 1;
}
