// Sparse-stepping scaling benchmark: dense (every server steps every
// interval) vs sparse (sleeping servers coast on the timer wheel) over a
// fleet-size × active-fraction sweep. The active servers carry the diurnal
// benign load (which draws RNG every tick, so they can never coast); the
// rest are pure idle and the sparse scheduler parks them.
//
// Two things are checked, not just measured:
//   * correctness — for every sweep point the dense and sparse runs must
//     produce an identical trace digest (per-step facility power, final
//     per-server power/uptime/RAPL), and the engine_* kSim counters must
//     accrue identically in both modes;
//   * performance — sparse must not be slower than dense at 1% activity,
//     and at full scale (10k servers, 1% active) must clear a 10x step
//     throughput ratio. CLEAKS_BENCH_QUICK=1 shrinks the sweep for
//     sanitizer CI, where only the >=1x smoke assertion applies.
//
// Emits BENCH_sparse.json (cleaks-bench-v1).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace cleaks;

namespace {

/// FNV-1a over raw bytes: good enough to witness bitwise identity.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_double(double value) { add(&value, sizeof value); }
  void add_u64(std::uint64_t value) { add(&value, sizeof value); }
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepPoint {
  int servers = 0;
  int active = 0;
  int steps = 0;
};

struct ModeRun {
  double seconds = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t active_steps = 0;   ///< engine_active_server_steps_total delta
  std::uint64_t coasted_s = 0;      ///< engine_idle_coasted_sim_seconds_total delta
  int slept = 0;                    ///< peak servers parked on the wheel
};

// Same registrations as the Datacenter's own metrics struct: the registry
// returns the existing counters, letting the bench read mode deltas.
obs::Counter& active_counter() {
  return obs::Registry::global().counter(
      "engine_active_server_steps_total",
      "server-steps that ran full per-tick physics (did not coast)");
}
obs::Counter& coasted_counter() {
  return obs::Registry::global().counter(
      "engine_idle_coasted_sim_seconds_total",
      "sim-seconds advanced through the analytic idle coast");
}

ModeRun run_mode(const SweepPoint& point, bool sparse) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 100;
  config.num_racks = (point.servers + 99) / 100;
  config.rack_breaker.rated_w = 1e9;  // scaling run, not a breaker study
  config.benign_load = true;
  config.benign_load_servers = point.active;
  config.seed = 23;
  config.num_threads = 1;  // per-step cost, not lane overlap
  config.sparse = sparse ? 1 : 0;
  cloud::Datacenter dc(config);

  ModeRun run;
  const std::uint64_t active_before = active_counter().value();
  const std::uint64_t coasted_before = coasted_counter().value();
  Digest digest;
  const double start = now_seconds();
  for (int s = 0; s < point.steps; ++s) {
    dc.step(kSecond);
    digest.add_double(dc.total_power_w());
    run.slept = std::max(run.slept, dc.sleeping_servers());
  }
  run.seconds = now_seconds() - start;
  for (int i = 0; i < dc.num_servers(); ++i) {
    cloud::Server& server = dc.server(i);  // syncs pending coast time
    digest.add_double(server.power_w());
    digest.add_u64(server.host().state().uptime_ns);
    if (!server.host().rapl().empty()) {
      digest.add_u64(server.host().rapl()[0].package().energy_uj());
    }
  }
  run.digest = digest.hash;
  run.active_steps = active_counter().value() - active_before;
  run.coasted_s = coasted_counter().value() - coasted_before;
  return run;
}

}  // namespace

int main() {
  const char* quick_env = std::getenv("CLEAKS_BENCH_QUICK");
  const bool quick =
      quick_env != nullptr && std::strtol(quick_env, nullptr, 10) != 0;
  // Last point is the headline: the biggest fleet at the lowest activity.
  const std::vector<SweepPoint> sweep =
      quick ? std::vector<SweepPoint>{{200, 8, 30}, {300, 3, 30}}
            : std::vector<SweepPoint>{
                  {1000, 100, 60}, {1000, 10, 60}, {10000, 100, 60}};
  const double headline_target = quick ? 1.0 : 10.0;

  std::printf("== sparse vs dense stepping (%s sweep) ==\n\n",
              quick ? "quick" : "full");
  obs::BenchReport report("sparse");
  auto& json = report.json();
  json.field("quick", quick);
  json.begin_array("runs");

  bool digests_match = true;
  bool counters_match = true;
  bool sparse_not_slower = true;
  double headline_speedup = 0.0;
  for (const SweepPoint& point : sweep) {
    const ModeRun dense = run_mode(point, /*sparse=*/false);
    const ModeRun sparse = run_mode(point, /*sparse=*/true);
    const double speedup =
        sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
    headline_speedup = speedup;  // last point wins: the headline config
    const bool match = dense.digest == sparse.digest;
    digests_match = digests_match && match;
    counters_match = counters_match &&
                     dense.active_steps == sparse.active_steps &&
                     dense.coasted_s == sparse.coasted_s;
    if (static_cast<double>(point.active) / point.servers <= 0.02) {
      sparse_not_slower = sparse_not_slower && speedup >= 1.0;
    }
    std::printf(
        "  %6d servers, %4d active, %3d steps: dense %8.1f ms, sparse "
        "%8.1f ms  (%.1fx)  digests %s  slept %d\n",
        point.servers, point.active, point.steps, dense.seconds * 1e3,
        sparse.seconds * 1e3, speedup, match ? "identical" : "DIVERGED",
        sparse.slept);
    char dense_hex[17];
    char sparse_hex[17];
    std::snprintf(dense_hex, sizeof dense_hex, "%016llx",
                  (unsigned long long)dense.digest);
    std::snprintf(sparse_hex, sizeof sparse_hex, "%016llx",
                  (unsigned long long)sparse.digest);
    json.begin_object()
        .field("servers", point.servers)
        .field("active_servers", point.active)
        .field("steps", point.steps)
        .field("dense_seconds", dense.seconds)
        .field("sparse_seconds", sparse.seconds)
        .field("speedup", speedup)
        .field("dense_digest", dense_hex)
        .field("sparse_digest", sparse_hex)
        .field("digests_match", match)
        .field("active_server_steps", dense.active_steps)
        .field("idle_coasted_sim_seconds", dense.coasted_s)
        .field("counters_match", dense.active_steps == sparse.active_steps &&
                                     dense.coasted_s == sparse.coasted_s)
        .field("sparse_peak_sleeping", sparse.slept)
        .end_object();
  }
  json.end_array();
  const bool headline_ok = headline_speedup >= headline_target;
  json.field("digests_match", digests_match);
  json.field("counters_match", counters_match);
  json.field("sparse_not_slower_at_low_activity", sparse_not_slower);
  json.field("headline_speedup", headline_speedup);
  json.field("headline_target", headline_target);
  json.field("headline_meets_target", headline_ok);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  std::printf("\ndigests identical across modes: %s\n",
              digests_match ? "yes" : "NO — SPARSE/DENSE DIVERGENCE");
  std::printf("headline speedup: %.1fx (target %.0fx)\n", headline_speedup,
              headline_target);
  std::printf("wrote %s\n", path.c_str());
  return digests_match && counters_match && sparse_not_slower && headline_ok
             ? 0
             : 1;
}
