// Sparse-stepping scaling benchmark: visit-all (CLEAKS_SPARSE=0 — every
// server stays on the active list and coasts per step) vs parked
// (CLEAKS_SPARSE=1 — coasting servers leave the list and are carried by
// the rack/facility aggregates + timer wheel) over a fleet-size sweep at
// a *fixed* active-server count. The active servers run the diurnal
// benign load (RNG every tick, so they never coast); the rest are pure
// idle and the parked schedule drops them from the per-step walk.
//
// Three things are checked, not just measured:
//   * correctness — for every sweep point the visit-all and parked runs
//     must produce an identical trace digest (per-step facility power,
//     final per-server power/uptime/RAPL), and the engine_* kSim
//     counters must accrue identically in both modes;
//   * O(active) aggregation — steady-state parked per-step cost must
//     stay flat (<= 1.3x) from the smallest to the largest fleet, since
//     the work is O(active + racks), not O(N);
//   * headline floor — the 10k-server / 1%-active point must run a
//     60-step loop at least 2x faster than the recorded PR 8 sparse
//     baseline (0.24 s), which still walked every server per step for
//     aggregation.
// The very first step is the parking edge: every idle server takes one
// real step to prove it can coast before it leaves the active list, so
// step 0 is inherently O(N). It is timed and reported separately
// (construction-adjacent warmup), and the flatness/headline gates apply
// to the steady state that follows.
// CLEAKS_BENCH_QUICK=1 shrinks the sweep for sanitizer CI and gates the
// two timing assertions off (digest/counter equality always applies).
//
// Emits BENCH_sparse.json (cleaks-bench-v1).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/env.h"

using namespace cleaks;

namespace {

/// 60-step wall seconds of the PR 8 sparse stepper at 10k servers / 1%
/// active, recorded before the aggregation loop went O(active + racks).
constexpr double kPr8BaselineSeconds = 0.24;

/// FNV-1a over raw bytes: good enough to witness bitwise identity.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_double(double value) { add(&value, sizeof value); }
  void add_u64(std::uint64_t value) { add(&value, sizeof value); }
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepPoint {
  int servers = 0;
  int active = 0;
  int steps = 0;
};

struct ModeRun {
  double first_step_seconds = 0.0;  ///< step 0: the O(N) parking edge
  double per_step_seconds = 0.0;    ///< steady regime: median of steps 1..n-1
  std::uint64_t digest = 0;
  std::uint64_t active_steps = 0;   ///< engine_active_server_steps_total delta
  std::uint64_t coasted_s = 0;      ///< engine_idle_coasted_sim_seconds_total delta
  int slept = 0;                    ///< peak servers parked on the wheel
};

// Same registrations as the Datacenter's own metrics struct: the registry
// returns the existing counters, letting the bench read mode deltas.
obs::Counter& active_counter() {
  return obs::Registry::global().counter(
      "engine_active_server_steps_total",
      "server-steps that ran full per-tick physics (did not coast)");
}
obs::Counter& coasted_counter() {
  return obs::Registry::global().counter(
      "engine_idle_coasted_sim_seconds_total",
      "sim-seconds advanced through the analytic idle coast");
}

/// One timed run. The steady per-step cost is the *median* step time
/// within a pass (robust to one-off scheduler spikes), minimised across
/// `repeats` passes (fresh Datacenter each pass, so every pass is
/// bitwise-identical — the min just strips sustained machine noise);
/// digest and counter deltas are captured on the first pass.
ModeRun run_mode(const SweepPoint& point, bool parked, int repeats) {
  ModeRun run;
  for (int pass = 0; pass < repeats; ++pass) {
    cloud::DatacenterConfig config;
    config.servers_per_rack = 100;
    config.num_racks = (point.servers + 99) / 100;
    config.rack_breaker.rated_w = 1e9;  // scaling run, not a breaker study
    config.benign_load = true;
    config.benign_load_servers = point.active;
    config.seed = 23;
    config.num_threads = 1;  // per-step cost, not lane overlap
    config.sparse = parked ? 1 : 0;
    cloud::Datacenter dc(config);

    const std::uint64_t active_before = active_counter().value();
    const std::uint64_t coasted_before = coasted_counter().value();
    Digest digest;
    int slept = 0;
    double first_step = 0.0;
    std::vector<double> step_seconds;
    step_seconds.reserve(static_cast<std::size_t>(point.steps));
    for (int s = 0; s < point.steps; ++s) {
      const double t0 = now_seconds();
      dc.step(kSecond);
      const double elapsed = now_seconds() - t0;
      if (s == 0) {
        first_step = elapsed;
      } else {
        step_seconds.push_back(elapsed);
      }
      digest.add_double(dc.total_power_w());
      slept = std::max(slept, dc.sleeping_servers());
    }
    std::nth_element(step_seconds.begin(),
                     step_seconds.begin() + step_seconds.size() / 2,
                     step_seconds.end());
    const double median = step_seconds[step_seconds.size() / 2];
    if (pass == 0) {
      run.first_step_seconds = first_step;
      run.per_step_seconds = median;
    } else {
      run.first_step_seconds = std::min(run.first_step_seconds, first_step);
      run.per_step_seconds = std::min(run.per_step_seconds, median);
    }
    if (pass != 0) continue;
    for (int i = 0; i < dc.num_servers(); ++i) {
      cloud::Server& server = dc.server(i);  // syncs pending coast time
      digest.add_double(server.power_w());
      digest.add_u64(server.host().state().uptime_ns);
      if (!server.host().rapl().empty()) {
        digest.add_u64(server.host().rapl()[0].package().energy_uj());
      }
    }
    run.digest = digest.hash;
    run.active_steps = active_counter().value() - active_before;
    run.coasted_s = coasted_counter().value() - coasted_before;
    run.slept = slept;
  }
  return run;
}

}  // namespace

int main() {
  const bool quick = env_long_or("CLEAKS_BENCH_QUICK", 0) != 0;
  // Fixed active count across the fleet sweep: only N grows, so a flat
  // parked per-step cost witnesses O(active + racks) aggregation. Last
  // point is the headline config (10k servers, 1% active).
  const std::vector<SweepPoint> sweep =
      quick ? std::vector<SweepPoint>{{200, 8, 30}, {300, 8, 30}}
            : std::vector<SweepPoint>{
                  {1000, 100, 60}, {3000, 100, 60}, {10000, 100, 60}};
  // The gated numbers come from the parked runs, so those take min-of-5
  // to strip scheduler noise; visit-all is reference-only and runs once.
  const int parked_repeats = quick ? 1 : 5;
  const double flat_limit = 1.3;
  const double headline_target = 2.0;

  std::printf("== visit-all vs parked stepping (%s sweep) ==\n\n",
              quick ? "quick" : "full");
  obs::BenchReport report("sparse");
  auto& json = report.json();
  json.field("quick", quick);
  json.begin_array("runs");

  bool digests_match = true;
  bool counters_match = true;
  double first_per_step = 0.0;
  double last_per_step = 0.0;
  double headline_seconds = 0.0;
  for (const SweepPoint& point : sweep) {
    const ModeRun visit_all = run_mode(point, /*parked=*/false, 1);
    const ModeRun parked = run_mode(point, /*parked=*/true, parked_repeats);
    // Per-step regime cost: steady steps only (steps 1..n-1); step 0 is
    // the O(N) parking edge and is reported on its own.
    const double per_step_us = parked.per_step_seconds * 1e6;
    const double visit_per_step_us = visit_all.per_step_seconds * 1e6;
    const double speedup =
        per_step_us > 0.0 ? visit_per_step_us / per_step_us : 0.0;
    if (&point == &sweep.front()) first_per_step = per_step_us;
    last_per_step = per_step_us;     // last point wins: biggest fleet
    // Headline comparison: the PR 8 baseline covered a full 60-step loop,
    // so project the steady per-step cost over the same step count.
    headline_seconds = per_step_us * 1e-6 * point.steps;
    const bool match = visit_all.digest == parked.digest;
    digests_match = digests_match && match;
    counters_match = counters_match &&
                     visit_all.active_steps == parked.active_steps &&
                     visit_all.coasted_s == parked.coasted_s;
    std::printf(
        "  %6d servers, %4d active, %3d steps: visit-all %8.2f us/step, "
        "parked %7.2f us/step (+%.1f ms parking edge, %.1fx)  digests %s  "
        "slept %d\n",
        point.servers, point.active, point.steps, visit_per_step_us,
        per_step_us, parked.first_step_seconds * 1e3, speedup,
        match ? "identical" : "DIVERGED", parked.slept);
    char visit_hex[17];
    char parked_hex[17];
    std::snprintf(visit_hex, sizeof visit_hex, "%016llx",
                  (unsigned long long)visit_all.digest);
    std::snprintf(parked_hex, sizeof parked_hex, "%016llx",
                  (unsigned long long)parked.digest);
    json.begin_object()
        .field("servers", point.servers)
        .field("active_servers", point.active)
        .field("steps", point.steps)
        .field("visit_all_per_step_us", visit_per_step_us)
        .field("parked_per_step_us", per_step_us)
        .field("parked_parking_edge_seconds", parked.first_step_seconds)
        .field("speedup", speedup)
        .field("visit_all_digest", visit_hex)
        .field("parked_digest", parked_hex)
        .field("digests_match", match)
        .field("active_server_steps", visit_all.active_steps)
        .field("idle_coasted_sim_seconds", visit_all.coasted_s)
        .field("counters_match",
               visit_all.active_steps == parked.active_steps &&
                   visit_all.coasted_s == parked.coasted_s)
        .field("parked_peak_sleeping", parked.slept)
        .end_object();
  }
  json.end_array();
  const double flat_ratio =
      first_per_step > 0.0 ? last_per_step / first_per_step : 0.0;
  const double headline_speedup =
      headline_seconds > 0.0 ? kPr8BaselineSeconds / headline_seconds : 0.0;
  // Timing gates only bind on the full sweep: the quick sweep runs under
  // sanitizers, where wall time means nothing.
  const bool flat_in_n = quick || flat_ratio <= flat_limit;
  const bool headline_ok = quick || headline_speedup >= headline_target;
  json.field("digests_match", digests_match);
  json.field("counters_match", counters_match);
  json.field("flat_per_step_ratio", flat_ratio);
  json.field("flat_limit", flat_limit);
  json.field("flat_in_n", flat_in_n);
  json.field("pr8_baseline_seconds", kPr8BaselineSeconds);
  json.field("headline_parked_60step_seconds", headline_seconds);
  json.field("headline_speedup", headline_speedup);
  json.field("headline_target", headline_target);
  json.field("headline_meets_target", headline_ok);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  std::printf("\ndigests identical across modes: %s\n",
              digests_match ? "yes" : "NO — VISIT-ALL/PARKED DIVERGENCE");
  std::printf(
      "parked per-step flatness smallest->largest fleet: %.2fx (limit "
      "%.1fx)\n",
      flat_ratio, flat_limit);
  std::printf("headline vs PR 8 baseline (%.2f s): %.1fx (target %.0fx)\n",
              kPr8BaselineSeconds, headline_speedup, headline_target);
  std::printf("wrote %s\n", path.c_str());
  return digests_match && counters_match && flat_in_n && headline_ok ? 0 : 1;
}
