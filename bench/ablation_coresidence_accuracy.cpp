// Ablation: per-channel co-residence verification accuracy and probe cost.
//
// Footnote 7 of the paper: "if a channel is a strong co-residence
// indicator, leveraging this one channel only should be enough." This
// bench quantifies that: every detector runs trials with known ground
// truth on a busy multi-tenant cloud, reporting accuracy, inconclusive
// rate and probe time — then repeats the sweep on a stage-1-hardened cloud
// where all Table I channels are masked (every detector should go blind).
#include <cstdio>
#include <iostream>

#include "coresidence/evaluation.h"
#include "obs/export.h"
#include "util/table.h"

using namespace cleaks;

namespace {

void sweep(cloud::Datacenter& dc, const char* title, bool expect_blind,
           obs::JsonWriter& json, const char* key) {
  std::printf("-- %s --\n", title);
  TablePrinter table({"detector", "trials", "accuracy", "TP", "FP", "TN",
                      "FN", "inconclusive", "probe_s"});
  coresidence::EvaluationOptions options;
  options.trials = 12;
  const auto results = coresidence::evaluate_all(dc, options);
  bool all_blind = true;
  bool strong_exists = false;
  json.begin_array(key);
  for (const auto& r : results) {
    table.add_row({r.detector, std::to_string(r.trials),
                   fixed(r.accuracy(), 2), std::to_string(r.true_positive),
                   std::to_string(r.false_positive),
                   std::to_string(r.true_negative),
                   std::to_string(r.false_negative),
                   std::to_string(r.inconclusive),
                   fixed(r.sim_seconds_per_probe, 1)});
    json.begin_object()
        .field("detector", r.detector)
        .field("trials", r.trials)
        .field("accuracy", r.accuracy())
        .field("inconclusive", r.inconclusive)
        .field("sim_seconds_per_probe", r.sim_seconds_per_probe)
        .end_object();
    if (r.inconclusive != r.trials) all_blind = false;
    if (r.accuracy() >= 0.99 && r.inconclusive == 0) strong_exists = true;
  }
  json.end_array();
  table.print(std::cout);
  if (expect_blind) {
    json.field("all_blind_when_hardened", all_blind);
    std::printf("all detectors blind under stage-1 masking: %s\n\n",
                all_blind ? "YES" : "NO");
  } else {
    json.field("strong_single_channel_detector", strong_exists);
    std::printf("at least one perfect single-channel detector (footnote 7): "
                "%s\n\n",
                strong_exists ? "YES" : "NO");
  }
}

}  // namespace

int main() {
  std::printf("== ablation: co-residence detector accuracy ==\n\n");

  obs::BenchReport report("ablation_coresidence_accuracy");

  cloud::DatacenterConfig open_config;
  open_config.servers_per_rack = 3;
  open_config.benign_load = true;
  open_config.profile = cloud::local_testbed();
  open_config.seed = 888;
  cloud::Datacenter open_cloud(open_config);
  sweep(open_cloud, "stock Docker cloud (no masking)", false, report.json(),
        "open_cloud");

  cloud::DatacenterConfig hardened_config = open_config;
  hardened_config.profile.policy = fs::MaskingPolicy::paper_stage1();
  cloud::Datacenter hardened_cloud(hardened_config);
  sweep(hardened_cloud, "stage-1 hardened cloud (Table I channels masked)",
        true, report.json(), "hardened_cloud");

  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
