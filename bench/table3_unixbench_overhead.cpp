// Table III: UnixBench performance with the power-based namespace disabled
// (Original) vs enabled (Modified), 1 and 8 parallel copies.
//
// Unlike the figure benches, the numbers here are *real wall-clock
// measurements of this implementation's hot paths*: each UnixBench test is
// mapped to the kernel paths it stresses (context switches against the
// idle task or between pipe partners, fork/exit storms, IO block/wake
// switches, plain computation), the simulated kernel executes the same
// operation mix in both modes, and the score is operations per wall
// second. Overhead = 1 - score_modified / score_original. The measured
// world (server + namespace + benchmark container) is a single-server
// scenario; only the inner op loop talks to the kernel directly.
//
// Paper headline: ~0-3% for compute/pipe/syscall rows; 6-9% for
// execl/process creation; the pipe-based context switching row shows a
// large overhead with 1 copy (inter-cgroup switches to the idle task force
// PMU save/restore) that nearly disappears at 8 copies (intra-cgroup
// switches between pipe partners are free).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "defense/trainer.h"
#include "obs/export.h"
#include "sim/engine.h"
#include "workload/unixbench.h"

using namespace cleaks;
using workload::BenchKind;
using workload::UnixBenchSpec;

namespace {

/// Kernel-path operation rates per simulated second for each test kind,
/// plus the application work attached to every operation (executed in BOTH
/// modes — a UnixBench op is mostly its own work; the namespace only adds
/// the PMU hooks on top).
struct OpMix {
  int inter_switch_pairs = 0;  ///< benchmark-task <-> idle/other-cgroup
  int intra_switches = 0;      ///< between tasks of the same cgroup
  int forks = 0;               ///< spawn+exit cycles
  int work_per_switch = 40;    ///< app work units per switch operation
  int pure_ops = 0;            ///< hook-free operations (compute/syscalls)
  int work_per_pure_op = 20;
};

OpMix mix_for(BenchKind kind, int copies) {
  OpMix mix;
  switch (kind) {
    case BenchKind::kCompute:
      // Arithmetic loops: virtually no kernel entry.
      mix.pure_ops = 200000 * copies;
      mix.work_per_pure_op = 25;
      mix.inter_switch_pairs = 100 * copies;
      break;
    case BenchKind::kExecl:
      mix.forks = 1500 * copies;
      mix.inter_switch_pairs = 1500 * copies;
      mix.work_per_switch = 120;
      break;
    case BenchKind::kFileCopy:
      // 1 copy: the page cache absorbs most IO (few blocking switches);
      // 8 parallel copies contend and block on every burst.
      mix.inter_switch_pairs = (copies == 1 ? 3000 : 25000 * copies);
      mix.work_per_switch = 110;
      mix.pure_ops = 50000 * copies;  // the byte-copy loops themselves
      mix.work_per_pure_op = 30;
      break;
    case BenchKind::kPipeThroughput:
      // The writer rarely blocks (pipe buffer), stays on cpu.
      mix.inter_switch_pairs = 800 * copies;
      mix.intra_switches = 2000 * copies;
      mix.pure_ops = 120000 * copies;
      mix.work_per_pure_op = 25;
      break;
    case BenchKind::kPipeContextSwitch:
      // 1 copy: the pair ping-pongs through the idle task => inter-cgroup
      // storm, PMU save/restore on every hop. 8 copies: 16 chatty
      // processes of one cgroup saturate the cores and switch between each
      // other => intra-cgroup, no PMU work.
      if (copies == 1) {
        mix.inter_switch_pairs = 120000;
      } else {
        mix.inter_switch_pairs = 2000;
        mix.intra_switches = 120000 * copies;
      }
      mix.work_per_switch = 11;  // the pipe hop itself is tiny
      break;
    case BenchKind::kProcessCreation:
      mix.forks = 2500 * copies;
      mix.inter_switch_pairs = 1000 * copies;
      mix.work_per_switch = 120;
      break;
    case BenchKind::kShellScripts:
      mix.forks = 300 * copies;
      mix.inter_switch_pairs = 3000 * copies;
      mix.work_per_switch = 90;
      mix.pure_ops = 20000 * copies;
      break;
    case BenchKind::kSyscall:
      mix.pure_ops = 400000 * copies;
      mix.work_per_pure_op = 12;  // getpid is cheap
      mix.inter_switch_pairs = 100 * copies;
      break;
  }
  return mix;
}

double total_ops(const OpMix& mix) {
  return mix.inter_switch_pairs * 2.0 + mix.intra_switches + mix.forks * 2.0 +
         mix.pure_ops + 1.0;
}

/// Application work: an unelidable arithmetic chain standing in for the
/// benchmark's own computation (byte copies, arithmetic, libc work).
inline std::uint64_t busy_work(std::uint64_t seed, int units) {
  std::uint64_t x = seed | 1;
  for (int i = 0; i < units; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
  }
  return x;
}

volatile std::uint64_t g_sink;

struct Measurement {
  double ops_per_wall_second = 0.0;
};

Measurement run_scenario(const UnixBenchSpec& spec, int copies,
                         bool power_ns_enabled, const defense::PowerModel& model) {
  sim::ScenarioSpec scenario;
  scenario.name = "table3-unixbench";
  sim::SingleServerSpec testbed;
  testbed.name = "t3";
  testbed.profile = cloud::local_testbed();
  testbed.seed = 404;
  scenario.single_server = testbed;
  scenario.host_tick = 10 * kMillisecond;
  scenario.defense.model = model;
  scenario.defense.enable = power_ns_enabled;
  scenario.fleet.placement = sim::FleetSpec::Placement::kDirect;
  scenario.fleet.count = 1;
  sim::SimEngine engine(scenario);
  container::Container& instance = engine.fleet_instance(0);
  cloud::Server& server = engine.server(0);

  for (int copy = 0; copy < copies; ++copy) {
    instance.run("ub-" + std::to_string(copy), spec.behavior);
  }
  auto* benchmark_cgroup = instance.cgroup().get();
  auto* root_cgroup = server.host().cgroups().root().get();
  auto& perf = server.host().perf();

  const OpMix mix = mix_for(spec.kind, copies);
  const int sim_seconds = 6;
  kernel::TaskBehavior forked;
  forked.duty_cycle = 0.0;

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sink = 1;
  for (int second = 0; second < sim_seconds; ++second) {
    // Drive the kernel paths this UnixBench test stresses. Each operation
    // carries its own application work (identical in both modes); the
    // namespace only adds the PMU hooks.
    for (int op = 0; op < mix.inter_switch_pairs; ++op) {
      const int cpu = op & 7;
      sink = busy_work(sink, mix.work_per_switch);
      perf.on_context_switch(benchmark_cgroup, root_cgroup, cpu);
      perf.on_context_switch(root_cgroup, benchmark_cgroup, cpu);
    }
    for (int op = 0; op < mix.intra_switches; ++op) {
      sink = busy_work(sink, mix.work_per_switch);
      perf.on_context_switch(benchmark_cgroup, benchmark_cgroup, op & 7);
    }
    for (int op = 0; op < mix.forks; ++op) {
      auto task = instance.run("ub-child", forked);
      instance.kill(task->host_pid);
    }
    for (int op = 0; op < mix.pure_ops; ++op) {
      sink = busy_work(sink, mix.work_per_pure_op);
    }
    engine.step(kSecond);
  }
  g_sink = sink;
  const auto end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(end - start).count();
  Measurement m;
  m.ops_per_wall_second = total_ops(mix) * sim_seconds / wall;
  return m;
}

/// Overhead = 1 - score_modified / score_original. Modes are measured in
/// back-to-back pairs and the per-pair ratio is medianed, so slow drift in
/// background machine load cancels out.
double overhead_for(const UnixBenchSpec& spec, int copies,
                    const defense::PowerModel& model) {
  std::vector<double> ratios;
  run_scenario(spec, copies, false, model);  // warm caches
  for (int rep = 0; rep < 5; ++rep) {
    const double original =
        run_scenario(spec, copies, false, model).ops_per_wall_second;
    const double modified =
        run_scenario(spec, copies, true, model).ops_per_wall_second;
    ratios.push_back(modified / original);
  }
  std::sort(ratios.begin(), ratios.end());
  return 1.0 - ratios[ratios.size() / 2];
}

}  // namespace

int main() {
  std::printf("== Table III: UnixBench overhead of the power-based "
              "namespace ==\n\n");
  auto model_result = defense::train_default_model(/*seed=*/33);
  if (!model_result.is_ok()) {
    std::printf("training failed\n");
    return 1;
  }
  const auto& model = model_result.value();

  std::printf("%-40s %9s %9s\n", "Benchmark", "1-copy", "8-copy");
  std::printf("%-40s %9s %9s\n", "", "overhead", "overhead");

  obs::BenchReport report("table3_unixbench_overhead");
  report.json().begin_array("rows");

  double geo_1 = 1.0;
  double geo_8 = 1.0;
  double pipe_ctx_1 = 0.0;
  double pipe_ctx_8 = 0.0;
  const auto suite = workload::unixbench_suite();
  for (const auto& spec : suite) {
    const double overhead_1 = overhead_for(spec, 1, model);
    const double overhead_8 = overhead_for(spec, 8, model);
    geo_1 *= 1.0 - overhead_1;
    geo_8 *= 1.0 - overhead_8;
    if (spec.kind == BenchKind::kPipeContextSwitch) {
      pipe_ctx_1 = overhead_1;
      pipe_ctx_8 = overhead_8;
    }
    std::printf("%-40s %8.2f%% %8.2f%%\n", spec.name.c_str(),
                overhead_1 * 100.0, overhead_8 * 100.0);
    report.json()
        .begin_object()
        .field("benchmark", spec.name)
        .field("overhead_1copy", overhead_1)
        .field("overhead_8copy", overhead_8)
        .end_object();
  }
  const double index_overhead_1 =
      1.0 - std::pow(geo_1, 1.0 / suite.size());
  const double index_overhead_8 =
      1.0 - std::pow(geo_8, 1.0 / suite.size());
  std::printf("%-40s %8.2f%% %8.2f%%\n", "System Benchmarks Index Score",
              index_overhead_1 * 100.0, index_overhead_8 * 100.0);

  std::printf(
      "\npaper: index overhead 9.66%% (1 copy) / 7.03%% (8 copies); "
      "pipe-based context switching 61.5%% (1 copy) -> 1.6%% (8 copies)\n");
  const bool shape_holds =
      pipe_ctx_1 > 0.10 && pipe_ctx_8 < pipe_ctx_1 / 3.0 &&
      index_overhead_1 < 0.25 && index_overhead_8 < 0.25;
  std::printf("shape holds (large 1-copy pipe-ctx overhead collapsing at 8 "
              "copies; modest index overhead): %s\n",
              shape_holds ? "YES" : "NO");

  report.json()
      .end_array()
      .field("index_overhead_1copy", index_overhead_1)
      .field("index_overhead_8copy", index_overhead_8)
      .field("pipe_ctx_1copy", pipe_ctx_1)
      .field("pipe_ctx_8copy", pipe_ctx_8)
      .field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
