// Fig 9: transparency/security of the power-based namespace.
//
// Two containers on one host; container 1 runs 401.bzip2 from t=10 s to
// t=60 s, container 2 stays idle. Per-second power as read by the host and
// by each container through the RAPL interface is printed.
//
// Paper headline: before t=10 s all three read the same idle level; after
// t=10 s container 1 and the host surge together while container 2 stays
// flat — the malicious observer is blind to the host's power condition.
#include <cstdio>
#include <vector>

#include "attack/monitor.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "obs/export.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== Fig 9: per-container power views (401.bzip2) ==\n\n");

  auto model_result = defense::train_default_model(/*seed=*/909);
  if (!model_result.is_ok()) {
    std::printf("training failed\n");
    return 1;
  }

  cloud::Server server("fig9", cloud::local_testbed(), 99);
  server.host().set_tick_duration(100 * kMillisecond);
  defense::PowerNamespace power_ns(server.runtime(), model_result.value());
  container::ContainerConfig config;
  config.num_cpus = 4;
  auto worker = server.runtime().create(config);   // container 1
  auto observer = server.runtime().create(config); // container 2 (idle)
  power_ns.enable();
  server.step(2 * kSecond);

  attack::RaplMonitor worker_monitor(*worker);
  attack::RaplMonitor observer_monitor(*observer);
  worker_monitor.sample_w(kSecond);
  observer_monitor.sample_w(kSecond);
  double host_energy_before = server.host().lifetime_energy_j();

  const auto bzip2 = workload::spec_suite()[0];  // 401.bzip2
  std::vector<kernel::HostPid> pids;
  std::printf("t_s,host_w,container1_w,container2_w\n");
  double observer_max_w = 0.0;
  double observer_idle_w = 0.0;
  double host_peak_w = 0.0;
  for (int second = 1; second <= 70; ++second) {
    if (second == 10) {
      for (int copy = 0; copy < 4; ++copy) {
        pids.push_back(worker->run("401.bzip2", bzip2.behavior)->host_pid);
      }
    }
    if (second == 60) {
      for (auto pid : pids) worker->kill(pid);
      pids.clear();
    }
    server.step(kSecond);
    const double host_now_j = server.host().lifetime_energy_j();
    const double host_w = host_now_j - host_energy_before;
    host_energy_before = host_now_j;
    const double worker_w = worker_monitor.sample_w(kSecond).value_or(0.0);
    const double observer_w =
        observer_monitor.sample_w(kSecond).value_or(0.0);
    std::printf("%d,%.1f,%.1f,%.1f\n", second, host_w, worker_w, observer_w);
    if (second < 10) observer_idle_w = observer_w;
    if (second >= 15 && second < 60) {
      observer_max_w = std::max(observer_max_w, observer_w);
      host_peak_w = std::max(host_peak_w, host_w);
    }
  }

  std::printf("\nsummary:\n");
  std::printf("  host peak during workload      : %.1f W\n", host_peak_w);
  std::printf("  container 2 (idle) before 10 s : %.1f W\n", observer_idle_w);
  std::printf("  container 2 (idle) max 15-60 s : %.1f W\n", observer_max_w);
  const bool blind = observer_max_w < observer_idle_w + 4.0 &&
                     host_peak_w > observer_max_w * 2.0;
  std::printf(
      "  container 2 blind to host surge: %s\n"
      "paper: container 2 stays at the idle level for the whole run while "
      "container 1 and the host surge together\n",
      blind ? "YES" : "NO");

  obs::BenchReport report("fig9_transparency");
  report.json()
      .field("host_peak_w", host_peak_w)
      .field("observer_idle_w", observer_idle_w)
      .field("observer_max_w", observer_max_w)
      .field("blind", blind);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return blind ? 0 : 1;
}
