// Ablation: how the provider's placement policy changes the cost of
// co-residence orchestration (§IV-C). The paper builds on prior findings
// that achieving co-residence is cheap; this bench quantifies *how* cheap
// as a function of placement policy, using the timer_list verification
// loop on an 8-server cloud: launches consumed, probes run, and the
// attacker's bill to assemble a 3-container group. Each trial is one
// declarative scenario: background tenants, then an orchestrated fleet.
#include <cstdio>
#include <iostream>

#include "containerleaks.h"
#include "sim/engine.h"

using namespace cleaks;

namespace {

struct Outcome {
  double launches = 0.0;
  double verifications = 0.0;
  double cost = 0.0;
  int successes = 0;
  int trials = 0;
};

Outcome run_policy(cloud::PlacementPolicy policy) {
  Outcome outcome;
  for (int trial = 0; trial < 5; ++trial) {
    sim::ScenarioSpec spec;
    spec.name = "placement-" + cloud::to_string(policy);
    spec.datacenter.servers_per_rack = 8;
    spec.datacenter.benign_load = false;
    spec.datacenter.profile = cloud::local_testbed();
    spec.datacenter.seed = 900 + trial;
    sim::ProviderSpec provider;
    provider.seed = 1000 + trial;
    provider.placement = policy;
    // Background tenants occupy the fleet first, the way a real cloud is
    // never empty (20 instances over 8 servers).
    provider.background_tenants = 20;
    spec.provider = provider;
    spec.fleet.placement = sim::FleetSpec::Placement::kOrchestrated;
    spec.fleet.count = 3;
    spec.fleet.tenant = "attacker";
    spec.fleet.max_launches = 60;
    sim::SimEngine engine(spec);

    const attack::OrchestratorResult& result = engine.acquisition();
    ++outcome.trials;
    if (result.success) {
      ++outcome.successes;
      outcome.launches += result.launches;
      outcome.verifications += result.verifications;
      outcome.cost += engine.billing_probe("attacker").cost_usd;
    }
  }
  if (outcome.successes > 0) {
    outcome.launches /= outcome.successes;
    outcome.verifications /= outcome.successes;
    outcome.cost /= outcome.successes;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("== ablation: placement policy vs co-residence cost ==\n\n");
  TablePrinter table({"placement", "success", "avg launches",
                      "avg probes", "avg cost ($)"});
  std::map<cloud::PlacementPolicy, Outcome> outcomes;
  for (auto policy :
       {cloud::PlacementPolicy::kBinPack, cloud::PlacementPolicy::kRandom,
        cloud::PlacementPolicy::kSpread}) {
    const auto outcome = run_policy(policy);
    outcomes[policy] = outcome;
    table.add_row({to_string(policy),
                   strformat("%d/%d", outcome.successes, outcome.trials),
                   fixed(outcome.launches, 1), fixed(outcome.verifications, 1),
                   fixed(outcome.cost, 5)});
  }
  table.print(std::cout);

  const auto& pack = outcomes[cloud::PlacementPolicy::kBinPack];
  const auto& random = outcomes[cloud::PlacementPolicy::kRandom];
  std::printf(
      "\nreading: bin-packing hands the attacker co-residence almost for\n"
      "free; random placement costs a handful of launches (the paper's CC1\n"
      "experience); spreading defeats the naive anchor-based orchestrator\n"
      "within this launch budget — an effective, if capacity-hungry,\n"
      "placement-side mitigation.\n");
  const bool shape_holds = pack.successes == pack.trials &&
                           pack.launches <= random.launches &&
                           random.successes == random.trials;
  std::printf("shape holds (bin-pack <= random, both always succeed): %s\n",
              shape_holds ? "YES" : "NO");

  obs::BenchReport report("ablation_placement");
  report.json().begin_array("policies");
  for (const auto& [policy, outcome] : outcomes) {
    report.json()
        .begin_object()
        .field("placement", cloud::to_string(policy))
        .field("successes", outcome.successes)
        .field("trials", outcome.trials)
        .field("avg_launches", outcome.launches)
        .field("avg_verifications", outcome.verifications)
        .field("avg_cost_usd", outcome.cost)
        .end_object();
  }
  report.json().end_array().field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
