// Table II: ranking the capability of leakage channels to infer
// co-residence via the U (uniqueness), V (variation), M (manipulation)
// metrics and joint Shannon entropy (Formula 1).
//
// Two simulated servers with benign background load are measured; channels
// are then ordered the paper's way: static unique ids, implantable
// signatures, dynamic accumulators (by growth rate), then variation-only
// channels (by entropy), then the rest.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cloud/server.h"
#include "leakage/uvm.h"
#include "obs/export.h"
#include "util/table.h"

using namespace cleaks;
using leakage::Manipulation;
using leakage::UniqueKind;

namespace {

int group_of(const leakage::UvmMetrics& metrics) {
  switch (metrics.unique_kind) {
    case UniqueKind::kStaticId:
      return 0;
    case UniqueKind::kImplant:
      return 1;
    case UniqueKind::kDynamicId:
      return 2;
    case UniqueKind::kNone:
      break;
  }
  return metrics.variation ? 3 : 4;
}

std::string mark(bool value) { return value ? "●" : "○"; }

std::string manipulation_mark(Manipulation manipulation) {
  switch (manipulation) {
    case Manipulation::kDirect:
      return "●";
    case Manipulation::kIndirect:
      return "◐";
    case Manipulation::kNone:
      return "○";
  }
  return "?";
}

std::string kind_name(UniqueKind kind) {
  switch (kind) {
    case UniqueKind::kStaticId:
      return "static-id";
    case UniqueKind::kImplant:
      return "implant";
    case UniqueKind::kDynamicId:
      return "dynamic-id";
    case UniqueKind::kNone:
      return "-";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("== Table II: co-residence capability of leakage channels ==\n\n");

  cloud::Server server_a("host-a", cloud::local_testbed(), 101, 33 * kDay);
  cloud::Server server_b("host-b", cloud::local_testbed(), 202, 71 * kDay);
  server_a.enable_benign_load(11);
  server_b.enable_benign_load(22);
  server_a.step(10 * kSecond);
  server_b.step(10 * kSecond);

  leakage::UvmAnalyzer analyzer(server_a, server_b);
  auto results = analyzer.analyze_all();

  std::stable_sort(results.begin(), results.end(),
                   [](const auto& lhs, const auto& rhs) {
                     const int gl = group_of(lhs);
                     const int gr = group_of(rhs);
                     if (gl != gr) return gl < gr;
                     if (gl == 2) return lhs.growth_per_sec > rhs.growth_per_sec;
                     if (gl == 3) return lhs.entropy_bits > rhs.entropy_bits;
                     return false;
                   });

  TablePrinter table({"Leakage Channel", "U", "V", "M", "kind",
                      "growth/s", "entropy(bits)"});
  for (const auto& metrics : results) {
    table.add_row({metrics.channel, mark(metrics.unique),
                   mark(metrics.variation),
                   manipulation_mark(metrics.manipulation),
                   kind_name(metrics.unique_kind),
                   metrics.unique_kind == UniqueKind::kDynamicId
                       ? fixed(metrics.growth_per_sec, 1)
                       : "-",
                   metrics.variation ? fixed(metrics.entropy_bits, 1) : "-"});
  }
  table.print(std::cout);

  int unique_count = 0;
  for (const auto& metrics : results) {
    if (metrics.unique) ++unique_count;
  }
  std::printf("\nsummary: %d/%zu channels satisfy the uniqueness metric\n",
              unique_count, results.size());
  std::printf(
      "paper:   17/29 channels are unique; boot_id and ifpriomap are static "
      "ids; sched_debug/timer_list/locks are implantable; modules, cpuinfo "
      "and version rank lowest\n");

  obs::BenchReport report("table2_coresidence_rank");
  report.json().begin_array("channels");
  for (const auto& metrics : results) {
    report.json()
        .begin_object()
        .field("channel", metrics.channel)
        .field("unique", metrics.unique)
        .field("variation", metrics.variation)
        .field("kind", kind_name(metrics.unique_kind))
        .field("growth_per_sec", metrics.growth_per_sec)
        .field("entropy_bits", metrics.entropy_bits)
        .end_object();
  }
  report.json()
      .end_array()
      .field("unique_count", unique_count)
      .field("total_channels", static_cast<int>(results.size()));
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
