// Microbenchmarks (google-benchmark) for the kernel paths the power-based
// namespace touches: context-switch hooks (intra/inter cgroup, monitored or
// not), perf-event fork inheritance, pseudo-file rendering, and the two
// RAPL read paths (stock leak vs. per-container modeled view). These are
// the per-operation costs behind Table III's aggregate overheads.
//
// The BM_HostAdvance_* pair compares the legacy object-at-a-time tick loop
// against the batched SoA plane on one host, reporting honest cycle counts
// (util/cycle_timer.h: rdtsc, or steady_clock ns on other platforms) as the
// "cycles" counter alongside google-benchmark's wall clock.
#include <benchmark/benchmark.h>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/provider.h"
#include "cloud/server.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "hw/batched_physics.h"
#include "util/cycle_timer.h"

using namespace cleaks;

namespace {

struct Env {
  Env()
      : server("micro", cloud::local_testbed(), 11),
        model(defense::train_default_model(11).value()),
        power_ns(server.runtime(), model) {
    server.host().set_tick_duration(100 * kMillisecond);
    container::ContainerConfig config;
    instance = server.runtime().create(config);
    other = server.runtime().create(config);
    server.step(2 * kSecond);
  }

  cloud::Server server;
  defense::PowerModel model;
  defense::PowerNamespace power_ns;
  std::shared_ptr<container::Container> instance;
  std::shared_ptr<container::Container> other;
};

Env& env() {
  static Env instance;
  return instance;
}

void BM_ContextSwitch_Unmonitored(benchmark::State& state) {
  auto& e = env();
  e.power_ns.disable();
  auto* a = e.instance->cgroup().get();
  auto* b = e.other->cgroup().get();
  for (auto _ : state) {
    e.server.host().perf().on_context_switch(a, b, 0);
  }
}
BENCHMARK(BM_ContextSwitch_Unmonitored);

void BM_ContextSwitch_IntraCgroup_Monitored(benchmark::State& state) {
  auto& e = env();
  e.power_ns.enable();
  auto* a = e.instance->cgroup().get();
  for (auto _ : state) {
    e.server.host().perf().on_context_switch(a, a, 0);
  }
}
BENCHMARK(BM_ContextSwitch_IntraCgroup_Monitored);

void BM_ContextSwitch_InterCgroup_Monitored(benchmark::State& state) {
  auto& e = env();
  e.power_ns.enable();
  auto* a = e.instance->cgroup().get();
  auto* root = e.server.host().cgroups().root().get();
  for (auto _ : state) {
    e.server.host().perf().on_context_switch(a, root, 0);
  }
}
BENCHMARK(BM_ContextSwitch_InterCgroup_Monitored);

void BM_ForkHook_Monitored(benchmark::State& state) {
  auto& e = env();
  e.power_ns.enable();
  auto* a = e.instance->cgroup().get();
  for (auto _ : state) {
    e.server.host().perf().on_task_fork(a, 0);
  }
}
BENCHMARK(BM_ForkHook_Monitored);

void BM_SpawnKillTask(benchmark::State& state) {
  auto& e = env();
  e.power_ns.disable();
  kernel::TaskBehavior idle_task;
  for (auto _ : state) {
    auto task = e.instance->run("bm-child", idle_task);
    e.instance->kill(task->host_pid);
  }
}
BENCHMARK(BM_SpawnKillTask);

void BM_Read_ProcStat(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/stat"));
  }
}
BENCHMARK(BM_Read_ProcStat);

void BM_Read_SchedDebug(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/sched_debug"));
  }
}
BENCHMARK(BM_Read_SchedDebug);

// Cached vs uncached container-context reads (the PR 5 viewer cache). On a
// quiescent host, repeat reads of a cacheable path are served from the
// per-viewer render cache; the uncached fixture pins the fault-bypass path
// with a rate-0 rule — it never actually fires, but any covered path skips
// the viewer cache entirely and renders from scratch each time.
const faults::FaultInjector& meminfo_bypass_injector() {
  static const faults::FaultInjector injector = [] {
    faults::FaultPlan plan;
    faults::FaultRule rule;
    rule.path_glob = "/proc/*info";  // meminfo + cpuinfo
    rule.rate = 0.0;
    plan.rules.push_back(rule);
    return faults::FaultInjector(plan);
  }();
  return injector;
}

void BM_Read_ProcMeminfo_Cached(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/meminfo"));
  }
}
BENCHMARK(BM_Read_ProcMeminfo_Cached);

void BM_Read_ProcMeminfo_Uncached(benchmark::State& state) {
  auto& e = env();
  e.server.fs().set_fault_injector(&meminfo_bypass_injector());
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/meminfo"));
  }
  e.server.fs().set_fault_injector(nullptr);
}
BENCHMARK(BM_Read_ProcMeminfo_Uncached);

void BM_Read_ProcCpuinfo_Cached(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/cpuinfo"));
  }
}
BENCHMARK(BM_Read_ProcCpuinfo_Cached);

void BM_Read_ProcCpuinfo_Uncached(benchmark::State& state) {
  auto& e = env();
  e.server.fs().set_fault_injector(&meminfo_bypass_injector());
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.instance->read_file("/proc/cpuinfo"));
  }
  e.server.fs().set_fault_injector(nullptr);
}
BENCHMARK(BM_Read_ProcCpuinfo_Uncached);

void BM_Read_RaplEnergy_Stock(benchmark::State& state) {
  auto& e = env();
  e.power_ns.disable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.instance->read_file("/sys/class/powercap/intel-rapl:0/energy_uj"));
  }
}
BENCHMARK(BM_Read_RaplEnergy_Stock);

void BM_Read_RaplEnergy_PowerNamespace(benchmark::State& state) {
  auto& e = env();
  e.power_ns.enable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.instance->read_file("/sys/class/powercap/intel-rapl:0/energy_uj"));
  }
}
BENCHMARK(BM_Read_RaplEnergy_PowerNamespace);

void BM_SchedulerTick_8Tasks(benchmark::State& state) {
  auto& e = env();
  e.power_ns.disable();
  std::vector<kernel::HostPid> pids;
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(e.instance->run("bm-busy", busy)->host_pid);
  }
  for (auto _ : state) {
    e.server.host().advance(100 * kMillisecond);
  }
  for (auto pid : pids) e.instance->kill(pid);
}
BENCHMARK(BM_SchedulerTick_8Tasks);

// Whole-host tick loop, legacy object-at-a-time path vs the batched SoA
// plane. Fresh servers (not the shared Env) so the storage mode is explicit;
// the "cycles" counter is the honest per-advance cost from the cycle timer,
// independent of google-benchmark's wall-clock plumbing.
void advance_loop(benchmark::State& state, cloud::Server& server) {
  server.host().set_tick_duration(100 * kMillisecond);
  server.step(kSecond);  // settle warmup transients out of the measurement
  CycleTimer cycles;
  for (auto _ : state) {
    cycles.start();
    server.host().advance(kSecond);
    cycles.stop();
  }
  state.counters["cycles"] = benchmark::Counter(
      static_cast<double>(cycles.total), benchmark::Counter::kAvgIterations);
}

void BM_HostAdvance_Scalar(benchmark::State& state) {
  cloud::Server server("bm-scalar", cloud::local_testbed(), 23);
  advance_loop(state, server);
}
BENCHMARK(BM_HostAdvance_Scalar);

void BM_HostAdvance_Batched(benchmark::State& state) {
  const auto profile = cloud::local_testbed();
  const hw::BatchedGeometry geometry{
      profile.hardware.num_cores, profile.hardware.num_packages,
      static_cast<int>(profile.hardware.cpuidle_states.size())};
  hw::BatchedPhysics plane(geometry, 1);
  cloud::Server server("bm-batched", profile, 23);
  server.bind_physics(plane, 0);
  advance_loop(state, server);
}
BENCHMARK(BM_HostAdvance_Batched);

// Provider control-plane hot paths (PR 10): steady-state launch/terminate
// churn against a part-full datacenter, and the batch forms the churn
// engine uses. Honest cycle counts via util/cycle_timer.h, like the
// BM_HostAdvance pair — the "cycles" counter is per iteration (one
// launch + one terminate for the pair, 64 of each for the batch).
struct FleetEnv {
  FleetEnv() : dc(make_config()), provider(dc, 4242) {
    container::ContainerConfig cc;
    cc.num_cpus = 0;
    // Pre-fill to half occupancy so the placement index works against a
    // realistic mixed-occupancy fleet, not an empty one.
    provider.launch_batch("resident", 4 * dc.num_servers(), cc);
  }
  static cloud::DatacenterConfig make_config() {
    cloud::DatacenterConfig config;
    config.num_racks = 1;
    config.servers_per_rack = 64;
    config.benign_load = false;
    config.seed = 31;
    return config;
  }
  cloud::Datacenter dc;
  cloud::CloudProvider provider;  // default policy/rates, 8 per server
};

FleetEnv& fleet_env() {
  static FleetEnv instance;
  return instance;
}

void BM_ProviderLaunchTerminate_Pair(benchmark::State& state) {
  auto& e = fleet_env();
  container::ContainerConfig cc;
  cc.num_cpus = 0;
  std::vector<std::uint64_t> uid;
  CycleTimer cycles;
  for (auto _ : state) {
    uid.clear();
    cycles.start();
    e.provider.launch_batch("churn", 1, cc, &uid);
    e.provider.terminate_batch(uid);
    cycles.stop();
  }
  state.counters["cycles"] = benchmark::Counter(
      static_cast<double>(cycles.total), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProviderLaunchTerminate_Pair);

void BM_ProviderBatch64(benchmark::State& state) {
  auto& e = fleet_env();
  container::ContainerConfig cc;
  cc.num_cpus = 0;
  CycleTimer cycles;
  for (auto _ : state) {
    cycles.start();
    e.provider.launch_batch("storm", 64, cc);
    e.provider.terminate_oldest("storm", 64);
    cycles.stop();
  }
  state.counters["cycles"] = benchmark::Counter(
      static_cast<double>(cycles.total), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProviderBatch64);

}  // namespace

BENCHMARK_MAIN();
