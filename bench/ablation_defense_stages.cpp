// Ablation: the defense-design space (DESIGN.md choice #4) — plain masking
// (stage 1) vs virtualized views (lxcfs-style) vs the power-based
// namespace (stage 2), and their combinations. For each configuration:
//
//   leaking    — Table I paths the cross-validation tool still classifies
//                as full leaks;
//   functional — Table I paths a tenant can still read at all (masking
//                trades functionality for isolation; virtualization keeps
//                the interface);
//   detectors  — how many of the ten co-residence detectors still verify a
//                truly co-resident pair;
//   crest      — whether the synergistic attacker's RAPL monitor still
//                tracks host load (the Fig 3 precondition).
//
// Each configuration is a single-server scenario; the three measurements
// are the engine's typed probes (leak_scan / coresidence / crest_signal).
#include <cstdio>
#include <iostream>

#include "containerleaks.h"
#include "sim/engine.h"

using namespace cleaks;

namespace {

struct Config {
  std::string name;
  fs::MaskingPolicy policy;
  bool power_namespace = false;
};

struct Row {
  int leaking = 0;
  int functional = 0;
  int total_paths = 0;
  int detectors_ok = 0;
  bool crest_signal = false;
};

Row evaluate(const Config& config, const defense::PowerModel& model) {
  sim::ScenarioSpec spec;
  spec.name = "defense-stage-" + config.name;
  sim::SingleServerSpec server;
  server.name = "stage-" + config.name;
  server.profile = cloud::local_testbed();
  server.profile.policy = config.policy;
  server.seed = 606;
  server.prior_uptime = 25 * kDay;
  spec.single_server = server;
  spec.host_tick = 100 * kMillisecond;
  // The namespace is always constructed (as a real rollout would ship
  // it); `enable` decides whether it is switched on for this config.
  spec.defense.model = model;
  spec.defense.enable = config.power_namespace;
  sim::SimEngine engine(spec);

  Row row;

  // --- leak scan over the Table I channels ---
  container::ContainerConfig scan_cc;
  scan_cc.num_cpus = 4;
  scan_cc.memory_limit_bytes = 4ULL << 30;
  const sim::SimEngine::LeakScanProbe scan = engine.leak_scan_probe(scan_cc);
  row.leaking = scan.leaking;
  row.functional = scan.functional;
  row.total_paths = scan.total_paths;

  // --- co-residence detectors on a truly co-resident pair ---
  container::ContainerConfig pair_cc;
  pair_cc.num_cpus = 2;
  row.detectors_ok = engine.coresidence_probe(pair_cc);

  // --- crest signal: does an in-container monitor track a host surge? ---
  row.crest_signal = engine.crest_signal_probe();
  return row;
}

}  // namespace

int main() {
  std::printf("== ablation: defense stages ==\n\n");
  auto model_result = defense::train_default_model(661);
  if (!model_result.is_ok()) {
    std::printf("training failed\n");
    return 1;
  }
  const auto& model = model_result.value();

  const std::vector<Config> configs = {
      {"stock-docker", fs::MaskingPolicy::docker_default(), false},
      {"stage1-mask", fs::MaskingPolicy::paper_stage1(), false},
      {"lxcfs-views", fs::MaskingPolicy::lxcfs_defense(), false},
      {"power-ns-only", fs::MaskingPolicy::docker_default(), true},
      {"lxcfs+power-ns", fs::MaskingPolicy::lxcfs_defense(), true},
  };

  TablePrinter table({"configuration", "leaking", "functional", "detectors",
                      "crest-signal"});
  std::vector<Row> rows;
  obs::BenchReport report("ablation_defense_stages");
  report.json().begin_array("configurations");
  for (const auto& config : configs) {
    const Row row = evaluate(config, model);
    rows.push_back(row);
    table.add_row({config.name,
                   strformat("%d/%d", row.leaking, row.total_paths),
                   strformat("%d/%d", row.functional, row.total_paths),
                   strformat("%d/10", row.detectors_ok),
                   row.crest_signal ? "YES" : "no"});
    report.json()
        .begin_object()
        .field("configuration", config.name)
        .field("leaking", row.leaking)
        .field("functional", row.functional)
        .field("total_paths", row.total_paths)
        .field("detectors_ok", row.detectors_ok)
        .field("crest_signal", row.crest_signal)
        .end_object();
  }
  report.json().end_array();
  table.print(std::cout);

  std::printf(
      "\nreading: stage-1 masking closes everything but kills the\n"
      "interfaces; lxcfs-style virtualization keeps them alive while\n"
      "closing the task/uptime channels; only the power-based namespace\n"
      "removes the crest signal without touching the interface. The\n"
      "combination approximates the paper's end state.\n");
  const bool shape_holds =
      rows[0].leaking > 0 && rows[0].crest_signal &&        // stock leaks
      rows[1].functional == 0 &&                            // stage1 kills fn
      rows[2].functional > rows[1].functional &&            // lxcfs keeps fn
      rows[2].leaking < rows[0].leaking &&                  // ...and helps
      !rows[3].crest_signal &&                              // power-ns blinds
      rows[4].detectors_ok < rows[0].detectors_ok &&        // combo strongest
      !rows[4].crest_signal;
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");

  report.json().field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
