// Ablation: the defense-design space (DESIGN.md choice #4) — plain masking
// (stage 1) vs virtualized views (lxcfs-style) vs the power-based
// namespace (stage 2), and their combinations. For each configuration:
//
//   leaking    — Table I paths the cross-validation tool still classifies
//                as full leaks;
//   functional — Table I paths a tenant can still read at all (masking
//                trades functionality for isolation; virtualization keeps
//                the interface);
//   detectors  — how many of the ten co-residence detectors still verify a
//                truly co-resident pair;
//   crest      — whether the synergistic attacker's RAPL monitor still
//                tracks host load (the Fig 3 precondition).
#include <cstdio>
#include <iostream>

#include "containerleaks.h"

using namespace cleaks;

namespace {

struct Config {
  std::string name;
  fs::MaskingPolicy policy;
  bool power_namespace = false;
};

struct Row {
  int leaking = 0;
  int functional = 0;
  int total_paths = 0;
  int detectors_ok = 0;
  bool crest_signal = false;
};

Row evaluate(const Config& config, const defense::PowerModel& model) {
  Row row;
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  profile.policy = config.policy;
  cloud::Server server("stage-" + config.name, profile, 606, 25 * kDay);
  server.host().set_tick_duration(100 * kMillisecond);
  defense::PowerNamespace power_ns(server.runtime(), model);
  if (config.power_namespace) power_ns.enable();

  // --- leak scan over the Table I channels ---
  {
    leakage::CrossValidator validator(server);
    container::ContainerConfig cc;
    cc.num_cpus = 4;
    cc.memory_limit_bytes = 4ULL << 30;
    auto probe = server.runtime().create(cc);
    for (const auto& channel : leakage::table1_channels()) {
      for (const auto& path : leakage::channel_paths(channel, server.fs())) {
        ++row.total_paths;
        const auto cls = validator.classify(path, *probe);
        if (cls == leakage::LeakClass::kLeaking) ++row.leaking;
        if (cls != leakage::LeakClass::kMasked &&
            cls != leakage::LeakClass::kAbsent) {
          ++row.functional;
        }
      }
    }
    server.runtime().destroy(probe->id());
  }

  // --- co-residence detectors on a truly co-resident pair ---
  {
    container::ContainerConfig cc;
    cc.num_cpus = 2;
    auto a = server.runtime().create(cc);
    auto b = server.runtime().create(cc);
    coresidence::ProbeEnv env;
    env.advance = [&](SimDuration dt) { server.step(dt); };
    for (const auto& detector : coresidence::all_detectors()) {
      if (detector->verify(*a, *b, env) ==
          coresidence::Verdict::kCoResident) {
        ++row.detectors_ok;
      }
    }
    server.runtime().destroy(a->id());
    server.runtime().destroy(b->id());
  }

  // --- crest signal: does an in-container monitor track a host surge? ---
  {
    auto observer = server.runtime().create({});
    attack::RaplMonitor monitor(*observer);
    monitor.sample_w(kSecond);
    server.step(2 * kSecond);
    const auto quiet = monitor.sample_w(2 * kSecond);
    auto virus = workload::power_virus();
    std::vector<kernel::HostPid> pids;
    for (int i = 0; i < 8; ++i) {
      pids.push_back(
          server.host().spawn_task({.comm = "surge", .behavior = virus.behavior})
              ->host_pid);
    }
    server.step(3 * kSecond);
    const auto loud = monitor.sample_w(3 * kSecond);
    for (auto pid : pids) server.host().kill_task(pid);
    row.crest_signal = quiet.has_value() && loud.has_value() &&
                       *loud > *quiet * 1.5;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== ablation: defense stages ==\n\n");
  auto model_result = defense::train_default_model(661);
  if (!model_result.is_ok()) {
    std::printf("training failed\n");
    return 1;
  }
  const auto& model = model_result.value();

  const std::vector<Config> configs = {
      {"stock-docker", fs::MaskingPolicy::docker_default(), false},
      {"stage1-mask", fs::MaskingPolicy::paper_stage1(), false},
      {"lxcfs-views", fs::MaskingPolicy::lxcfs_defense(), false},
      {"power-ns-only", fs::MaskingPolicy::docker_default(), true},
      {"lxcfs+power-ns", fs::MaskingPolicy::lxcfs_defense(), true},
  };

  TablePrinter table({"configuration", "leaking", "functional", "detectors",
                      "crest-signal"});
  std::vector<Row> rows;
  for (const auto& config : configs) {
    const Row row = evaluate(config, model);
    rows.push_back(row);
    table.add_row({config.name,
                   strformat("%d/%d", row.leaking, row.total_paths),
                   strformat("%d/%d", row.functional, row.total_paths),
                   strformat("%d/10", row.detectors_ok),
                   row.crest_signal ? "YES" : "no"});
  }
  table.print(std::cout);

  std::printf(
      "\nreading: stage-1 masking closes everything but kills the\n"
      "interfaces; lxcfs-style virtualization keeps them alive while\n"
      "closing the task/uptime channels; only the power-based namespace\n"
      "removes the crest signal without touching the interface. The\n"
      "combination approximates the paper's end state.\n");
  const bool shape_holds =
      rows[0].leaking > 0 && rows[0].crest_signal &&        // stock leaks
      rows[1].functional == 0 &&                            // stage1 kills fn
      rows[2].functional > rows[1].functional &&            // lxcfs keeps fn
      rows[2].leaking < rows[0].leaking &&                  // ...and helps
      !rows[3].crest_signal &&                              // power-ns blinds
      rows[4].detectors_ok < rows[0].detectors_ok &&        // combo strongest
      !rows[4].crest_signal;
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
