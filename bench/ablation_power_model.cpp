// Ablation: the design choices inside the power-based namespace.
//
//  1. Feature set — the paper argues (§V-B2, citing Xu et al.) that CPU
//     utilization alone cannot attribute power: the same utilization with
//     different instruction mixes draws different power. We compare the
//     full model (instructions + miss-mix features, Formula 2) against a
//     utilization-only regression on the held-out SPEC suite.
//  2. On-the-fly calibration (Formula 3) — the paper notes that the fitted
//     constants depend on the architecture and that this "could be
//     mitigated in the calibration step". We train on the reference
//     testbed but deploy on a host whose silicon draws ~12% more energy
//     per instruction (part-to-part variation): the uncalibrated model
//     inherits that bias wholesale, the calibrated read path absorbs it.
#include <cmath>
#include <cstdio>

#include "cloud/profiles.h"
#include "cloud/server.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "obs/export.h"
#include "util/stats.h"
#include "util/strings.h"
#include "workload/profiles.h"

using namespace cleaks;

namespace {

/// Per-benchmark relative error of modeled vs hardware-derived container
/// energy over a 20 s window, with and without calibration.
struct ErrorPair {
  double calibrated = 0.0;
  double uncalibrated = 0.0;
  double utilization_only = 0.0;
};

ErrorPair measure(const workload::Profile& profile,
                  const defense::PowerModel& model,
                  const defense::UtilizationOnlyModel& util_model) {
  // Deployment host: same SKU, hungrier silicon than the training testbed.
  auto deploy_profile = cloud::local_testbed();
  deploy_profile.hardware.energy.e_inst_nj *= 1.12;
  deploy_profile.hardware.energy.e_cmiss_dram_nj *= 1.10;
  deploy_profile.hardware.energy.p_uncore_w *= 1.08;
  cloud::Server server("abl", deploy_profile,
                       7000 + fnv1a64(profile.name) % 997);
  server.host().set_tick_duration(100 * kMillisecond);
  defense::PowerNamespace power_ns(server.runtime(), model);
  container::ContainerConfig config;
  config.num_cpus = 4;
  auto instance = server.runtime().create(config);
  power_ns.enable();

  // Delta_diff of Formula 4: host power minus container-reported power,
  // both at idle.
  server.step(3 * kSecond);
  const double idle_before = server.host().lifetime_energy_j();
  const double idle_container_before_uj = parse_first_double(
      instance->read_file("/sys/class/powercap/intel-rapl:0/energy_uj")
          .value());
  server.step(8 * kSecond);
  const double idle_host_w =
      (server.host().lifetime_energy_j() - idle_before) / 8.0;
  const double idle_container_w =
      (parse_first_double(
           instance->read_file("/sys/class/powercap/intel-rapl:0/energy_uj")
               .value()) -
       idle_container_before_uj) /
      1e6 / 8.0;
  const double delta_diff_w = idle_host_w - idle_container_w;

  for (int copy = 0; copy < 4; ++copy) {
    instance->run(profile.name, profile.behavior);
  }
  server.step(2 * kSecond);

  auto read_uj = [&]() {
    return static_cast<double>(parse_first_int(
        instance->read_file("/sys/class/powercap/intel-rapl:0/energy_uj")
            .value()));
  };
  const double host_before = server.host().lifetime_energy_j();
  const double container_before_uj = read_uj();
  // Perf snapshot for the uncalibrated variants.
  const auto perf_before =
      kernel::PerfEventSubsystem::read(*instance->cgroup());
  constexpr double kWindow = 20.0;
  server.step(from_seconds(kWindow));
  const double e_rapl = server.host().lifetime_energy_j() - host_before;
  const double truth = e_rapl - delta_diff_w * kWindow;

  // 1. Calibrated (the shipping read path).
  const double calibrated_j = (read_uj() - container_before_uj) / 1e6;

  // 2/3. Raw model outputs from the same perf deltas, no Formula 3.
  const auto perf_after =
      kernel::PerfEventSubsystem::read(*instance->cgroup());
  defense::PerfDelta delta;
  delta.instructions = static_cast<double>(perf_after.instructions -
                                           perf_before.instructions);
  delta.cache_misses = static_cast<double>(perf_after.cache_misses -
                                           perf_before.cache_misses);
  delta.branch_misses = static_cast<double>(perf_after.branch_misses -
                                            perf_before.branch_misses);
  delta.cycles =
      static_cast<double>(perf_after.cycles - perf_before.cycles);
  delta.seconds = kWindow;
  const double uncalibrated_j = model.package_energy_j(delta);
  const double util_only_j = util_model.package_energy_j(delta);

  auto relative_error = [&](double modeled) {
    return truth > 0 ? std::fabs(truth - modeled) / truth : 1.0;
  };
  return {relative_error(calibrated_j), relative_error(uncalibrated_j),
          relative_error(util_only_j)};
}

}  // namespace

int main() {
  std::printf("== ablation: power-model feature set and calibration ==\n\n");

  kernel::Host trainer_host("abl-train", hw::testbed_i7_6700(), 1717);
  trainer_host.set_tick_duration(100 * kMillisecond);
  const auto samples = defense::collect_training_samples(
      trainer_host, workload::training_set());
  defense::PowerModel model;
  defense::UtilizationOnlyModel util_model;
  if (!model.train(samples).is_ok() || !util_model.train(samples).is_ok()) {
    std::printf("training failed\n");
    return 1;
  }

  std::printf("benchmark,xi_calibrated,xi_uncalibrated,xi_utilization_only\n");
  RunningStats calibrated;
  RunningStats uncalibrated;
  RunningStats util_only;
  for (const auto& profile : workload::spec_suite()) {
    const auto errors = measure(profile, model, util_model);
    std::printf("%s,%.4f,%.4f,%.4f\n", profile.name.c_str(),
                errors.calibrated, errors.uncalibrated,
                errors.utilization_only);
    calibrated.add(errors.calibrated);
    uncalibrated.add(errors.uncalibrated);
    util_only.add(errors.utilization_only);
  }

  std::printf("\nsummary (mean / max relative error over SPEC suite):\n");
  std::printf("  full model + calibration : %.4f / %.4f\n",
              calibrated.mean(), calibrated.max());
  std::printf("  full model, uncalibrated : %.4f / %.4f\n",
              uncalibrated.mean(), uncalibrated.max());
  std::printf("  utilization-only model   : %.4f / %.4f\n",
              util_only.mean(), util_only.max());
  const bool shape_holds = calibrated.max() <= uncalibrated.max() + 1e-9 &&
                           util_only.max() > calibrated.max() * 2.0;
  std::printf(
      "\nshape holds (calibration never hurts; utilization-only is far "
      "worse across mixes): %s\n",
      shape_holds ? "YES" : "NO");

  obs::BenchReport report("ablation_power_model");
  report.json()
      .field("xi_calibrated_mean", calibrated.mean())
      .field("xi_calibrated_max", calibrated.max())
      .field("xi_uncalibrated_mean", uncalibrated.mean())
      .field("xi_uncalibrated_max", uncalibrated.max())
      .field("xi_utilization_only_mean", util_only.mean())
      .field("xi_utilization_only_max", util_only.max())
      .field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
