// Robustness sweep for the fault-injection layer: run the Table-1 scan
// under transient-read fault plans of increasing rate and measure how the
// classifications hold up. Two regimes:
//   * recoverable — fault spans (200 ms) shorter than the scanner's retry
//     budget (3 x 300 ms): every transient resolves, so accuracy vs the
//     fault-free baseline must stay 1.0 with zero degraded channels;
//   * harsh — spans (1.2 s) that outlast the budget: channels degrade to
//     the conservative kAbsent fallback, but degraded-not-wrong demands
//     zero *misclassifications* (a changed class without the degraded
//     flag).
// Also digests a faulted scan at 1/2/4/8 lanes: the fault schedule is a
// pure function of (seed, path, window), so injected runs must stay
// bitwise identical at every thread count. Emits
// BENCH_robustness_fault_sweep.json; exits nonzero on any violation.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cloud/server.h"
#include "faults/injector.h"
#include "leakage/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace cleaks;

namespace {

faults::FaultPlan transient_plan(double rate, SimDuration duration) {
  faults::FaultPlan plan;
  plan.seed = 12;
  faults::FaultRule rule;
  rule.kind = faults::FaultKind::kTransientUnavailable;
  rule.path_glob = "**";
  rule.rate = rate;
  rule.period = 2 * kSecond;
  rule.duration = duration;
  plan.rules.push_back(rule);
  return plan;
}

std::vector<leakage::FileFinding> scan_with(const faults::FaultPlan& plan,
                                            int num_threads) {
  cloud::Server server("sweep-host", cloud::local_testbed(), 77, 40 * kDay);
  const faults::FaultInjector injector(plan);
  if (!plan.empty()) server.fs().set_fault_injector(&injector);
  leakage::ScanOptions options;
  options.num_threads = num_threads;
  leakage::CrossValidator validator(server, options);
  return validator.scan();
}

struct SweepPoint {
  double rate = 0.0;
  int paths = 0;
  int degraded = 0;
  int misclassified = 0;
  std::uint64_t retried = 0;
  double accuracy = 1.0;
};

SweepPoint measure(const std::map<std::string, leakage::LeakClass>& baseline,
                   const faults::FaultPlan& plan, double rate) {
  auto& retried_total =
      obs::Registry::global().counter("scan_reads_retried_total", "");
  const std::uint64_t retried_before = retried_total.value();
  const auto findings = scan_with(plan, /*num_threads=*/0);
  SweepPoint point;
  point.rate = rate;
  point.paths = static_cast<int>(findings.size());
  point.retried = retried_total.value() - retried_before;
  for (const auto& finding : findings) {
    if (finding.degraded) {
      ++point.degraded;
      continue;  // a degraded class is a declared unknown, never "wrong"
    }
    if (baseline.at(finding.path) != finding.cls) ++point.misclassified;
  }
  point.accuracy =
      point.paths == 0
          ? 1.0
          : 1.0 - static_cast<double>(point.misclassified) / point.paths;
  return point;
}

/// FNV-1a over every finding: path bytes, class, degraded bit.
std::uint64_t findings_digest(const std::vector<leakage::FileFinding>& findings) {
  std::uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  for (const auto& finding : findings) {
    for (const char c : finding.path) mix(static_cast<unsigned char>(c));
    mix(static_cast<unsigned char>(finding.cls));
    mix(finding.degraded ? 1 : 0);
  }
  return hash;
}

void append_point(obs::JsonWriter& json, const SweepPoint& point) {
  json.begin_object()
      .field("rate", point.rate)
      .field("paths", point.paths)
      .field("reads_retried", point.retried)
      .field("degraded", point.degraded)
      .field("misclassified", point.misclassified)
      .field("accuracy", point.accuracy)
      .end_object();
}

}  // namespace

int main() {
  // Fault-free baseline: the ground truth every faulted scan is scored
  // against.
  std::map<std::string, leakage::LeakClass> baseline;
  for (const auto& finding : scan_with(faults::FaultPlan{}, 0)) {
    baseline[finding.path] = finding.cls;
  }
  std::printf("== robustness under injected faults (%zu paths) ==\n\n",
              baseline.size());

  bool violation = false;
  obs::BenchReport report("robustness_fault_sweep");

  // Recoverable regime: scan accuracy vs fault rate.
  std::printf("recoverable (200 ms spans, 900 ms retry budget):\n");
  std::printf("  %-6s %8s %10s %9s %14s %9s\n", "rate", "paths", "retried",
              "degraded", "misclassified", "accuracy");
  report.json().begin_array("recoverable");
  for (double rate : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const auto point =
        measure(baseline, transient_plan(rate, 200 * kMillisecond), rate);
    std::printf("  %-6.2f %8d %10llu %9d %14d %9.3f\n", rate, point.paths,
                (unsigned long long)point.retried, point.degraded,
                point.misclassified, point.accuracy);
    append_point(report.json(), point);
    // Below the retry budget nothing may change class or stay degraded.
    if (point.misclassified != 0 || point.degraded != 0) violation = true;
  }
  report.json().end_array();

  // Harsh regime: spans outlast the budget, channels must degrade — to the
  // conservative fallback, never to a wrong class.
  const auto harsh =
      measure(baseline, transient_plan(1.0, 1200 * kMillisecond), 1.0);
  std::printf("\nharsh (1.2 s spans outlast the budget):\n");
  std::printf("  degraded %d / %d paths, misclassified %d\n", harsh.degraded,
              harsh.paths, harsh.misclassified);
  report.json().begin_object("harsh");
  report.json()
      .field("rate", harsh.rate)
      .field("paths", harsh.paths)
      .field("degraded", harsh.degraded)
      .field("misclassified", harsh.misclassified);
  report.json().end_object();
  if (harsh.degraded == 0 || harsh.misclassified != 0) violation = true;

  // Cross-lane determinism of a faulted scan.
  std::printf("\nfaulted-scan digests:\n");
  report.json().begin_array("digests");
  const faults::FaultPlan plan = transient_plan(0.5, 200 * kMillisecond);
  std::uint64_t serial_digest = 0;
  bool identical = true;
  for (int threads : {1, 2, 4, 8}) {
    const std::uint64_t digest = findings_digest(scan_with(plan, threads));
    if (threads == 1) serial_digest = digest;
    if (digest != serial_digest) identical = false;
    std::printf("  %d thread(s): %016llx\n", threads,
                (unsigned long long)digest);
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)digest);
    report.json()
        .begin_object()
        .field("threads", threads)
        .field("digest", digest_hex)
        .end_object();
  }
  report.json().end_array();
  report.json().field("identical_across_threads", identical);
  if (!identical) violation = true;

  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }
  std::printf("\ngraceful degradation: %s\n",
              violation ? "VIOLATED" : "holds (degraded, never wrong)");
  std::printf("wrote %s\n", path.c_str());
  return violation ? 1 : 0;
}
