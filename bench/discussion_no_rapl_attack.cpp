// §VII-A: synergistic power attacks without the RAPL channel.
//
// The CC4-class fleet has no RAPL hardware, so the energy_uj channel does
// not exist — yet the attack survives: the attacker approximates the power
// state from /proc/stat's utilization, which correlates tightly with
// dynamic power. The bench measures (a) the correlation between the
// utilization proxy and true host power, (b) crest-timing quality of a
// proxy-guided attacker, and (c) the effect of the paper's recommendation
// ("make system-wide performance statistics unavailable to tenants").
#include <cstdio>
#include <vector>

#include "attack/monitor.h"
#include "attack/strategy.h"
#include "cloud/datacenter.h"
#include "obs/export.h"
#include "util/stats.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== no-RAPL synergistic attack (utilization proxy) ==\n\n");

  // (a) proxy quality: utilization vs true power on a loaded CC4 server.
  cloud::CloudServiceProfile profile = cloud::cc4();
  profile.policy = fs::MaskingPolicy::docker_default();  // isolate hw effect
  cloud::Server server("cc4-server", profile, 2020, 30 * kDay);
  server.enable_benign_load(77);
  auto observer = server.runtime().create({});
  attack::UtilizationMonitor proxy(*observer);
  proxy.sample_utilization(kSecond);

  std::vector<double> utilization;
  std::vector<double> true_power;
  for (int second = 0; second < 600; ++second) {
    server.step(kSecond);
    const auto sample = proxy.sample_utilization(kSecond);
    if (sample.has_value()) {
      utilization.push_back(*sample);
      true_power.push_back(server.host().last_tick_power_w());
    }
  }
  const double correlation = pearson_correlation(utilization, true_power);
  std::printf("utilization-vs-power correlation over 10 min: %.3f\n",
              correlation);

  // (b) crest timing: does triggering on top-decile utilization land on
  // top-decile power moments?
  const double util_p90 = percentile(utilization, 90.0);
  const double power_p75 = percentile(true_power, 75.0);
  int triggers = 0;
  int good_triggers = 0;
  for (std::size_t i = 0; i < utilization.size(); ++i) {
    if (utilization[i] >= util_p90) {
      ++triggers;
      if (true_power[i] >= power_p75) ++good_triggers;
    }
  }
  std::printf(
      "top-decile-utilization triggers landing on top-quartile power: "
      "%d/%d\n",
      good_triggers, triggers);

  // (c) countermeasure: masking system-wide performance statistics.
  cloud::CloudServiceProfile hardened = profile;
  hardened.policy.add_rule("/proc/stat", fs::MaskAction::kDeny);
  hardened.policy.add_rule("/proc/loadavg", fs::MaskAction::kDeny);
  hardened.policy.add_rule("/proc/schedstat", fs::MaskAction::kDeny);
  cloud::Server hardened_server("cc4-hardened", hardened, 2021, 30 * kDay);
  hardened_server.enable_benign_load(78);
  auto blind_observer = hardened_server.runtime().create({});
  attack::UtilizationMonitor blind_proxy(*blind_observer);
  hardened_server.step(5 * kSecond);
  const bool blind = !blind_proxy.sample_utilization(5 * kSecond).has_value();
  std::printf("proxy blind after masking performance statistics: %s\n",
              blind ? "YES" : "NO");

  const bool shape_holds =
      correlation > 0.9 && good_triggers == triggers && blind;
  std::printf(
      "\npaper (§VII-A): without RAPL, attackers approximate power from "
      "utilization channels; masking system-wide performance statistics is "
      "the recommended fix\n");
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");

  obs::BenchReport report("discussion_no_rapl_attack");
  report.json()
      .field("utilization_power_correlation", correlation)
      .field("triggers", triggers)
      .field("good_triggers", good_triggers)
      .field("proxy_blind_after_masking", blind)
      .field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
