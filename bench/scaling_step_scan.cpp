// Scaling benchmark for the parallel simulation engine: wall-clock time of
// (a) Datacenter::step over a 16-server facility and (b) a full
// CrossValidator::scan, at 1/2/4/8 execution lanes. Every run also digests
// its results so the determinism contract — bitwise-identical output for
// every thread count — is checked, not assumed. Emits BENCH_scaling.json
// through the shared cleaks-bench-v1 exporter.
//
// A second, cycle-honest section profiles the step hot path (the SoA plane
// is the only implementation now) on a single lane and emits
// BENCH_hotpath.json with per-kernel cycle costs. The process fails if the
// hot path's digest diverges from the scaling section's — same facility,
// same seed, so any difference is a determinism bug, not noise.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "leakage/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/cycle_timer.h"
#include "util/thread_pool.h"

using namespace cleaks;

namespace {

/// FNV-1a over raw bytes: good enough to witness bitwise identity.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_double(double value) { add(&value, sizeof value); }
  void add_string(const std::string& text) { add(text.data(), text.size()); }
};

struct Run {
  int threads = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Run bench_datacenter_step(int threads) {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 8;
  config.rack_breaker.rated_w = 8000.0;
  config.rack_power_cap_w = 6500.0;
  config.seed = 11;
  config.num_threads = threads;
  cloud::Datacenter dc(config);

  Digest digest;
  const double start = now_seconds();
  for (int tick = 0; tick < 120; ++tick) {
    dc.step(kSecond);
    digest.add_double(dc.total_power_w());
  }
  const double elapsed = now_seconds() - start;
  for (int s = 0; s < dc.num_servers(); ++s) {
    digest.add_double(dc.server(s).power_w());
  }
  return {threads, elapsed, digest.hash};
}

Run bench_scan(int threads) {
  cloud::Server server("bench-host", cloud::local_testbed(), 77, 40 * kDay);
  leakage::ScanOptions options;
  options.num_threads = threads;
  leakage::CrossValidator validator(server, options);

  const double start = now_seconds();
  const auto findings = validator.scan();
  const double elapsed = now_seconds() - start;

  Digest digest;
  for (const auto& finding : findings) {
    digest.add_string(finding.path);
    digest.add_string(leakage::to_string(finding.cls));
  }
  return {threads, elapsed, digest.hash};
}

void report_runs(obs::JsonWriter& json, const char* name,
                 const std::vector<Run>& runs, bool* identical) {
  std::printf("%s:\n", name);
  json.begin_array(name);
  for (const auto& run : runs) {
    const double speedup = runs[0].seconds / run.seconds;
    std::printf("  %d thread(s): %8.1f ms  (%.2fx)  digest %016llx\n",
                run.threads, run.seconds * 1e3, speedup,
                (unsigned long long)run.digest);
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)run.digest);
    json.begin_object()
        .field("threads", run.threads)
        .field("seconds", run.seconds)
        .field("speedup", speedup)
        .field("digest", digest_hex)
        .end_object();
    if (run.digest != runs[0].digest) *identical = false;
  }
  json.end_array();
}

// ---------- hotpath: single-lane step cost + kernel cycle costs ----------

struct HotpathRun {
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  std::uint64_t cycles_per_step = 0;
  std::uint64_t digest = 0;
};

HotpathRun bench_hotpath() {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 8;
  config.rack_breaker.rated_w = 8000.0;
  config.rack_power_cap_w = 6500.0;
  config.seed = 11;
  config.num_threads = 1;  // single lane: pure per-step cost, no overlap
  cloud::Datacenter dc(config);

  constexpr int kSteps = 120;
  Digest digest;
  CycleTimer cycles;
  const double start = now_seconds();
  cycles.start();
  for (int tick = 0; tick < kSteps; ++tick) {
    dc.step(kSecond);
    digest.add_double(dc.total_power_w());
  }
  cycles.stop();
  const double elapsed = now_seconds() - start;
  for (int s = 0; s < dc.num_servers(); ++s) {
    digest.add_double(dc.server(s).power_w());
  }
  HotpathRun run;
  run.seconds = elapsed;
  run.steps_per_sec = elapsed > 0.0 ? kSteps / elapsed : 0.0;
  run.cycles_per_step = cycles.total / kSteps;
  run.digest = digest.hash;
  return run;
}

/// Cycles per call of `op`, amortized over `iters` runs.
template <typename Op>
std::uint64_t cycles_per_op(int iters, Op&& op) {
  CycleTimer timer;
  timer.start();
  for (int i = 0; i < iters; ++i) op();
  timer.stop();
  return timer.total / static_cast<std::uint64_t>(iters);
}

void report_hotpath_run(obs::JsonWriter& json, const char* key,
                        const HotpathRun& run) {
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                (unsigned long long)run.digest);
  json.begin_object(key)
      .field("seconds", run.seconds)
      .field("steps_per_sec", run.steps_per_sec)
      .field("cycles_per_step", run.cycles_per_step)
      .field("digest", digest_hex)
      .end_object();
}

/// Single-lane step-cost profile plus per-kernel cycle costs of the
/// physics kernels the step is built from. `scaling_digest` is the
/// single-thread digest from the scaling section above — same facility,
/// same step count, so the hot path must reproduce it bitwise. Lane
/// reporting goes through ThreadPool::default_lanes() so the envelope
/// records the same CLEAKS_THREADS resolution every pool in the binary
/// uses (clamped env override, else hardware concurrency).
bool run_hotpath_section(std::uint64_t scaling_digest) {
  std::printf("\n== step hot path (single lane) ==\n");
  const double cps = calibrate_cycles_per_second();
  std::printf("cycle source: %s (~%.2f GHz equivalent)\n",
              cycle_counter_source(), cps / 1e9);

  const HotpathRun step = bench_hotpath();
  const bool digests_match = step.digest == scaling_digest;
  std::printf("  step: %8.1f ms  %7.1f steps/s  %10llu cyc/step  %016llx\n",
              step.seconds * 1e3, step.steps_per_sec,
              (unsigned long long)step.cycles_per_step,
              (unsigned long long)step.digest);
  std::printf("  digest vs scaling section: %s\n",
              digests_match ? "identical" : "DIVERGED");

  // Per-kernel cycle costs of the physics leaves the step is composed of.
  double sink = 0.0;  // observed below so no kernel loop is dead code
  hw::RaplDomainState rapl_state;
  const auto rapl_cycles = cycles_per_op(200000, [&] {
    hw::rapl_charge(rapl_state, 0.1234, hw::RaplDomain::kDefaultRangeUj);
  });
  sink += rapl_state.total_j;
  hw::ThermalModel thermal(32);
  std::vector<double> power(32, 3.5);
  const double decay = hw::thermal_decay(1.0, thermal.params());
  const auto thermal_cycles = cycles_per_op(50000, [&] {
    thermal.advance_with_decay(power.data(), power.size(), decay);
  });
  hw::CpuIdleAccounting cpuidle(32, cloud::cc1().hardware.cpuidle_states);
  int idle_core = 0;
  const auto cpuidle_cycles = cycles_per_op(200000, [&] {
    cpuidle.record_idle(idle_core, 350);
    idle_core = (idle_core + 1) % 32;
  });
  sink += static_cast<double>(cpuidle.time_us(0, 0));
  sink += thermal.temp_c(0);
  hw::EnergyModel energy(cloud::cc1().hardware.energy);
  hw::TickActivity activity;
  activity.active_seconds = 0.4;
  activity.idle_seconds = 0.6;
  activity.instructions = 5e8;
  activity.cycles = 9e8;
  activity.cache_misses = 2e6;
  activity.branch_misses = 1e6;
  const auto energy_cycles = cycles_per_op(200000, [&] {
    sink += energy.core_activity_energy(activity).package_j;
  });
  std::printf(
      "  kernels: rapl_charge %llu cyc, thermal_step(32c) %llu cyc,\n"
      "           cpuidle_record %llu cyc, core_energy %llu cyc  (sink %.1f)\n",
      (unsigned long long)rapl_cycles, (unsigned long long)thermal_cycles,
      (unsigned long long)cpuidle_cycles, (unsigned long long)energy_cycles,
      sink);

  obs::BenchReport report("hotpath");
  auto& json = report.json();
  json.field("cycle_source", cycle_counter_source());
  json.field("cycles_per_second", cps);
  json.field("default_lanes", ThreadPool::default_lanes());
  report_hotpath_run(json, "step", step);
  json.field("digests_match", digests_match);
  json.begin_array("kernels");
  auto kernel = [&](const char* name, std::uint64_t cyc) {
    json.begin_object().field("name", name).field("cycles_per_op", cyc)
        .end_object();
  };
  kernel("rapl_charge", rapl_cycles);
  kernel("thermal_step_32c", thermal_cycles);
  kernel("cpuidle_record", cpuidle_cycles);
  kernel("core_activity_energy", energy_cycles);
  json.end_array();
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write hotpath bench report\n");
    return false;
  }
  std::printf("wrote %s\n", path.c_str());

  if (!digests_match) {
    std::fprintf(stderr,
                 "hotpath: step digest diverged from the scaling section\n");
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<int> lane_counts = {1, 2, 4, 8};
  std::printf("== parallel engine scaling (hardware_concurrency = %u) ==\n\n",
              std::thread::hardware_concurrency());

  std::vector<Run> step_runs;
  std::vector<Run> scan_runs;
  for (int threads : lane_counts) {
    step_runs.push_back(bench_datacenter_step(threads));
  }
  for (int threads : lane_counts) {
    scan_runs.push_back(bench_scan(threads));
  }

  obs::BenchReport report("scaling");
  report.json().field("hardware_concurrency",
                      std::thread::hardware_concurrency());
  bool identical = true;
  report_runs(report.json(), "datacenter_step", step_runs, &identical);
  report_runs(report.json(), "scan", scan_runs, &identical);
  report.json().field("identical_across_threads", identical);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  std::printf("\nidentical output across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  std::printf("wrote %s\n", path.c_str());

  const bool hotpath_ok = run_hotpath_section(step_runs[0].digest);
  return identical && hotpath_ok ? 0 : 1;
}
