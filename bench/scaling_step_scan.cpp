// Scaling benchmark for the parallel simulation engine: wall-clock time of
// (a) Datacenter::step over a 16-server facility and (b) a full
// CrossValidator::scan, at 1/2/4/8 execution lanes. Every run also digests
// its results so the determinism contract — bitwise-identical output for
// every thread count — is checked, not assumed. Emits BENCH_scaling.json
// through the shared cleaks-bench-v1 exporter.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "leakage/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace cleaks;

namespace {

/// FNV-1a over raw bytes: good enough to witness bitwise identity.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_double(double value) { add(&value, sizeof value); }
  void add_string(const std::string& text) { add(text.data(), text.size()); }
};

struct Run {
  int threads = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Run bench_datacenter_step(int threads) {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 8;
  config.rack_breaker.rated_w = 8000.0;
  config.rack_power_cap_w = 6500.0;
  config.seed = 11;
  config.num_threads = threads;
  cloud::Datacenter dc(config);

  Digest digest;
  const double start = now_seconds();
  for (int tick = 0; tick < 120; ++tick) {
    dc.step(kSecond);
    digest.add_double(dc.total_power_w());
  }
  const double elapsed = now_seconds() - start;
  for (int s = 0; s < dc.num_servers(); ++s) {
    digest.add_double(dc.server(s).power_w());
  }
  return {threads, elapsed, digest.hash};
}

Run bench_scan(int threads) {
  cloud::Server server("bench-host", cloud::local_testbed(), 77, 40 * kDay);
  leakage::ScanOptions options;
  options.num_threads = threads;
  leakage::CrossValidator validator(server, options);

  const double start = now_seconds();
  const auto findings = validator.scan();
  const double elapsed = now_seconds() - start;

  Digest digest;
  for (const auto& finding : findings) {
    digest.add_string(finding.path);
    digest.add_string(leakage::to_string(finding.cls));
  }
  return {threads, elapsed, digest.hash};
}

void report_runs(obs::JsonWriter& json, const char* name,
                 const std::vector<Run>& runs, bool* identical) {
  std::printf("%s:\n", name);
  json.begin_array(name);
  for (const auto& run : runs) {
    const double speedup = runs[0].seconds / run.seconds;
    std::printf("  %d thread(s): %8.1f ms  (%.2fx)  digest %016llx\n",
                run.threads, run.seconds * 1e3, speedup,
                (unsigned long long)run.digest);
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)run.digest);
    json.begin_object()
        .field("threads", run.threads)
        .field("seconds", run.seconds)
        .field("speedup", speedup)
        .field("digest", digest_hex)
        .end_object();
    if (run.digest != runs[0].digest) *identical = false;
  }
  json.end_array();
}

}  // namespace

int main() {
  const std::vector<int> lane_counts = {1, 2, 4, 8};
  std::printf("== parallel engine scaling (hardware_concurrency = %u) ==\n\n",
              std::thread::hardware_concurrency());

  std::vector<Run> step_runs;
  std::vector<Run> scan_runs;
  for (int threads : lane_counts) {
    step_runs.push_back(bench_datacenter_step(threads));
  }
  for (int threads : lane_counts) {
    scan_runs.push_back(bench_scan(threads));
  }

  obs::BenchReport report("scaling");
  report.json().field("hardware_concurrency",
                      std::thread::hardware_concurrency());
  bool identical = true;
  report_runs(report.json(), "datacenter_step", step_runs, &identical);
  report_runs(report.json(), "scan", scan_runs, &identical);
  report.json().field("identical_across_threads", identical);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  std::printf("\nidentical output across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  std::printf("wrote %s\n", path.c_str());
  return identical ? 0 : 1;
}
