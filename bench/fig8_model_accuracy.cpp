// Fig 8: accuracy of the power-based namespace's energy modeling.
//
// The model is trained on the Fig 6/7 workloads, then each SPECCPU2006-like
// benchmark (disjoint from training) runs inside a container with the
// power-based namespace enabled. Per Formula 4,
//     xi = |(E_RAPL - Delta_diff) - M_container| / (E_RAPL - Delta_diff),
// where E_RAPL is the host's hardware reading for the measurement window,
// M_container the modeled energy the container reads through its unchanged
// RAPL interface, and Delta_diff the constant reflecting the (trivial)
// difference between host power and container-reported power at idle —
// measured empirically over an idle window before the workload starts.
//
// Paper headline: xi < 0.05 for every tested benchmark.
#include <cstdio>

#include "cloud/profiles.h"
#include "cloud/server.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "obs/export.h"
#include "util/strings.h"
#include "workload/profiles.h"

using namespace cleaks;

namespace {

std::uint64_t read_container_uj(const container::Container& instance) {
  return static_cast<std::uint64_t>(parse_first_int(
      instance.read_file("/sys/class/powercap/intel-rapl:0/energy_uj")
          .value()));
}

}  // namespace

int main() {
  std::printf("== Fig 8: energy model accuracy (Formula 4) ==\n\n");

  auto model_result = defense::train_default_model(/*seed=*/808);
  if (!model_result.is_ok()) {
    std::printf("training failed\n");
    return 1;
  }

  obs::BenchReport report("fig8_model_accuracy");
  report.json().begin_array("benchmarks");

  std::printf("benchmark,xi\n");
  double worst_xi = 0.0;
  for (const auto& profile : workload::spec_suite()) {
    cloud::Server server("fig8", cloud::local_testbed(),
                         3000 + fnv1a64(profile.name) % 1000);
    server.host().set_tick_duration(100 * kMillisecond);

    defense::PowerNamespace power_ns(server.runtime(),
                                     model_result.value());
    container::ContainerConfig config;
    config.num_cpus = 4;
    auto instance = server.runtime().create(config);
    power_ns.enable();

    // Delta_diff: host power minus container-reported power, both at idle
    // ("both the host and container consume power at an idle state with
    // trivial differences").
    server.step(5 * kSecond);
    const double idle_host_before_j = server.host().lifetime_energy_j();
    const std::uint64_t idle_container_before_uj =
        read_container_uj(*instance);
    server.step(10 * kSecond);
    const double idle_host_w =
        (server.host().lifetime_energy_j() - idle_host_before_j) / 10.0;
    const double idle_container_w =
        static_cast<double>(read_container_uj(*instance) -
                            idle_container_before_uj) /
        1e6 / 10.0;
    const double delta_diff_w = idle_host_w - idle_container_w;

    for (int copy = 0; copy < 4; ++copy) {
      instance->run(profile.name, profile.behavior);
    }
    server.step(2 * kSecond);  // spawn transient

    const double rapl_before_j = server.host().lifetime_energy_j();
    const std::uint64_t container_before_uj = read_container_uj(*instance);
    constexpr double kWindowSeconds = 30.0;
    server.step(from_seconds(kWindowSeconds));
    const double e_rapl = server.host().lifetime_energy_j() - rapl_before_j;
    const double m_container =
        static_cast<double>(read_container_uj(*instance) -
                            container_before_uj) /
        1e6;
    const double delta_diff = delta_diff_w * kWindowSeconds;
    const double denominator = e_rapl - delta_diff;
    const double xi =
        denominator > 0 ? std::abs(denominator - m_container) / denominator
                        : 1.0;
    worst_xi = std::max(worst_xi, xi);
    std::printf("%s,%.4f\n", profile.name.c_str(), xi);
    report.json()
        .begin_object()
        .field("benchmark", profile.name)
        .field("xi", xi)
        .end_object();
  }
  report.json()
      .end_array()
      .field("worst_xi", worst_xi)
      .field("threshold", 0.05)
      .field("pass", worst_xi < 0.05);
  const std::string path = report.write();

  std::printf("\nsummary: worst-case xi = %.4f (threshold 0.05 per paper)\n",
              worst_xi);
  std::printf("paper: error values of all tested benchmarks below 0.05\n");
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return worst_xi < 0.05 ? 0 : 1;
}
