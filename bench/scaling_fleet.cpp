// Fleet-scale control-plane benchmark: the PR 10 provider rewrite
// (Fenwick/bucket placement index, slab instance table, epoch-batched
// billing) swept over servers x tenants up to a million live containers.
//
// Three claims are checked, not just measured:
//   * O(log R) launches — the old control plane rebuilt a full occupancy
//     map per launch (walk every live instance into a std::map), so the
//     per-launch curve used to be linear in N. Two gates pin the win:
//     per-launch *control* cycles must grow sub-linearly in server count
//     (<= server-growth/2 across the sweep; literal flatness is a memory
//     fiction at this scale — a 1M-container world is ~3 GB, so even
//     O(log R) work pays more per cache/TLB miss at the top), and the
//     bench re-measures the legacy O(N) rebuild at each point's scale:
//     the new control plane must beat it everywhere and by >= 10x at the
//     largest point.
//   * step cost is O(servers + tenants), not O(instances) — the provider
//     times its own control phase (provider_step_control_cycles_total,
//     physics excluded: scheduler ticks are O(tasks) by design and out of
//     scope here). Gate: per-*instance* step control cost must not grow
//     (<= 1.3x) across a 256x growth in instances — it falls ~4x, since
//     each server carries 16x more containers at the top of the sweep.
//     The per-(server+tenant) normalization is reported alongside.
//   * determinism — a mixed idle/busy fleet with a short billing epoch is
//     run at 1/2/4/8 datacenter lanes; the digest over every (uid,
//     server) placement, per-tenant billing bits, and facility power
//     must be bitwise-identical. (Equality against the *pre-refactor*
//     provider is pinned separately by tests/provider_test.cpp goldens.)
//
// The timing fleet is fully idle so the deferred-rollup path dominates:
// that is the control plane's steady state, and it keeps the eager
// metering walk (which is O(instances of touched tenants) whenever a
// tenant has usage movement) out of the flatness denominator. The digest
// runs do the opposite — busy containers, eager metering, mid-run epoch
// settles — to pin the full math across lane counts.
// CLEAKS_BENCH_QUICK=1 shrinks the sweep for sanitizer CI and gates the
// two timing assertions off (digest equality always applies).
//
// Emits BENCH_fleet.json (cleaks-bench-v1).
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/provider.h"
#include "kernel/task.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/cycle_timer.h"
#include "util/env.h"

using namespace cleaks;

namespace {

/// FNV-1a over raw bytes: good enough to witness bitwise identity.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_double(double value) { add(&value, sizeof value); }
  void add_u64(std::uint64_t value) { add(&value, sizeof value); }
  void add_i32(int value) { add(&value, sizeof value); }
};

struct SweepPoint {
  int servers = 0;
  int max_per_server = 0;
  int tenants = 0;
  int steps = 0;
  [[nodiscard]] int instances() const { return servers * max_per_server; }
};

// Same registration as the provider's metrics struct: the registry hands
// back the existing counter, letting the bench read per-phase deltas.
obs::Counter& control_cycles_counter() {
  return obs::Registry::global().counter(
      "provider_step_control_cycles_total",
      "cycles spent in step()'s control plane (metering + epoch rollup), "
      "excluding datacenter physics; unit = util/cycle_timer.h source",
      obs::Scope::kRuntime);
}
obs::Counter& launch_control_counter() {
  return obs::Registry::global().counter(
      "provider_launch_control_cycles_total",
      "cycles spent in launch's control plane (settle + placement pick + "
      "slab/index maintenance), excluding the container runtime create",
      obs::Scope::kRuntime);
}
obs::Counter& terminate_control_counter() {
  return obs::Registry::global().counter(
      "provider_terminate_control_cycles_total",
      "cycles spent in terminate's control plane (settle + slab/index "
      "removal), excluding the container runtime destroy",
      obs::Scope::kRuntime);
}

cloud::DatacenterConfig fleet_config(int servers, int lanes) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 64;
  config.num_racks = (servers + 63) / 64;
  config.rack_breaker.rated_w = 1e9;  // scaling run, not a breaker study
  config.benign_load = false;
  config.seed = 23;
  config.num_threads = lanes;
  return config;
}

/// Containers pinned to no explicit cpuset: fleet scaling measures the
/// control plane, not the kernel's cpuset packing scan.
container::ContainerConfig fleet_container() {
  container::ContainerConfig config;
  config.num_cpus = 0;
  return config;
}

struct PointRun {
  double launch_cycles = 0.0;     ///< amortized per launch, incl. create
  double launch_control = 0.0;    ///< control plane only (no create)
  double terminate_cycles = 0.0;  ///< amortized per terminate, incl. destroy
  double terminate_control = 0.0; ///< control plane only (no destroy)
  double control_per_step = 0.0;  ///< provider control-phase cycles per step
  double step_wall_seconds = 0.0; ///< full step incl. physics, for context
  double legacy_rebuild = 0.0;    ///< pre-refactor O(N) occupancy rebuild
  int instances = 0;
};

/// What the pre-refactor provider paid *per launch*: rebuild a
/// std::map<int,int> occupancy histogram by walking every live instance,
/// then scan it for candidates — measured at this point's scale and
/// cache conditions (min of 3; the flat source vector understates the
/// old shared_ptr chase, so this is a conservative baseline).
double measure_legacy_rebuild(const std::vector<int>& instance_servers,
                              int max_per_server) {
  std::uint64_t best = ~0ULL;
  int sink = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const std::uint64_t t0 = read_cycle_counter();
    std::map<int, int> occupancy;
    for (const int server : instance_servers) ++occupancy[server];
    for (const auto& [server, count] : occupancy) {
      if (count < max_per_server) ++sink;
    }
    const std::uint64_t elapsed = read_cycle_counter() - t0;
    best = elapsed < best ? elapsed : best;
  }
  return best + (sink == -1 ? 1.0 : 0.0);  // keep the scan observable
}

/// Fill every server to capacity across `tenants` round-robin tenants,
/// step the idle fleet, then terminate a quarter of each tenant.
PointRun run_point(const SweepPoint& point) {
  PointRun run;
  run.instances = point.instances();
  cloud::Datacenter dc(fleet_config(point.servers, /*lanes=*/1));
  cloud::CloudProvider provider(dc, 4242, cloud::BillingRates{},
                                cloud::PlacementPolicy::kRandom,
                                point.max_per_server);
  const container::ContainerConfig cc = fleet_container();
  const int per_tenant = point.instances() / point.tenants;

  std::uint64_t control_before = launch_control_counter().value();
  std::uint64_t t0 = read_cycle_counter();
  for (int t = 0; t < point.tenants; ++t) {
    provider.launch_batch("fleet-" + std::to_string(t), per_tenant, cc);
  }
  run.launch_cycles = static_cast<double>(read_cycle_counter() - t0) /
                      static_cast<double>(point.instances());
  run.launch_control =
      static_cast<double>(launch_control_counter().value() - control_before) /
      static_cast<double>(point.instances());

  // Replay the legacy per-launch cost at this exact scale: uids are
  // monotonic from 1, so this recovers every placement (untimed), then
  // times the O(N) occupancy rebuild the old pick path ran per launch.
  std::vector<int> instance_servers;
  instance_servers.reserve(static_cast<std::size_t>(point.instances()));
  for (std::uint64_t uid = 1;
       uid <= static_cast<std::uint64_t>(point.instances()); ++uid) {
    const auto* inst = provider.find_uid(uid);
    if (inst != nullptr) instance_servers.push_back(inst->server_index);
  }
  run.legacy_rebuild =
      measure_legacy_rebuild(instance_servers, point.max_per_server);

  control_before = control_cycles_counter().value();
  t0 = read_cycle_counter();
  for (int s = 0; s < point.steps; ++s) provider.step(kSecond);
  run.step_wall_seconds = static_cast<double>(read_cycle_counter() - t0) /
                          (point.steps * calibrate_cycles_per_second());
  run.control_per_step =
      static_cast<double>(control_cycles_counter().value() - control_before) /
      point.steps;

  const int terminates_per_tenant = per_tenant / 4;
  control_before = terminate_control_counter().value();
  t0 = read_cycle_counter();
  for (int t = 0; t < point.tenants; ++t) {
    provider.terminate_oldest("fleet-" + std::to_string(t),
                              terminates_per_tenant);
  }
  run.terminate_cycles =
      static_cast<double>(read_cycle_counter() - t0) /
      static_cast<double>(terminates_per_tenant * point.tenants);
  run.terminate_control =
      static_cast<double>(terminate_control_counter().value() -
                          control_before) /
      static_cast<double>(terminates_per_tenant * point.tenants);
  return run;
}

/// Lane-count determinism run: mixed idle/busy fleet, 2 s billing epoch
/// (so rollups settle mid-run), digest over placement + billing + power.
std::uint64_t run_digest(const SweepPoint& point, int lanes) {
  cloud::Datacenter dc(fleet_config(point.servers, lanes));
  cloud::CloudProvider provider(dc, 4242, cloud::BillingRates{},
                                cloud::PlacementPolicy::kRandom,
                                point.max_per_server, 2 * kSecond);
  const container::ContainerConfig cc = fleet_container();
  const int per_tenant = point.instances() / point.tenants;
  std::vector<std::uint64_t> uids;
  uids.reserve(static_cast<std::size_t>(point.instances()));
  for (int t = 0; t < point.tenants; ++t) {
    provider.launch_batch("fleet-" + std::to_string(t), per_tenant, cc);
  }
  // Busy minority: two containers of tenant 0 burn, driving the eager
  // metering walk and the marker scan on their servers.
  kernel::TaskBehavior burn;
  burn.duty_cycle = 1.0;
  int busy = 0;
  for (std::uint64_t uid = 1; busy < 2; ++uid) {
    const auto* inst = provider.find_uid(uid);
    if (inst == nullptr) continue;
    inst->handle->run("burn", burn);
    ++busy;
  }
  for (int s = 0; s < point.steps; ++s) provider.step(kSecond);

  Digest digest;
  for (std::uint64_t uid = 1;
       uid <= static_cast<std::uint64_t>(point.instances()); ++uid) {
    const auto* inst = provider.find_uid(uid);
    if (inst == nullptr) continue;
    digest.add_u64(uid);
    digest.add_i32(inst->server_index);
  }
  for (int t = 0; t < point.tenants; ++t) {
    const std::string tenant = "fleet-" + std::to_string(t);
    digest.add_double(provider.billing().total_cost(tenant));
    digest.add_double(provider.billing().cpu_hours(tenant));
  }
  digest.add_double(dc.total_power_w());
  digest.add_u64(provider.instance_count());
  return digest.hash;
}

}  // namespace

int main() {
  const bool quick = env_long_or("CLEAKS_BENCH_QUICK", 0) != 0;
  // Servers x max-per-server grows 16x per point; tenants track servers.
  // The last full point is the headline: 4096 servers x 256 containers
  // each = 1,048,576 live instances.
  const std::vector<SweepPoint> sweep =
      quick ? std::vector<SweepPoint>{{16, 4, 4, 3}, {64, 8, 8, 3}}
            : std::vector<SweepPoint>{
                  {256, 16, 16, 5}, {1024, 64, 64, 5}, {4096, 256, 256, 5}};
  const double flat_limit = 1.3;

  std::printf("== fleet control plane scaling (%s sweep, cycles = %s) ==\n\n",
              quick ? "quick" : "full", cycle_counter_source());
  obs::BenchReport report("fleet");
  auto& json = report.json();
  json.field("quick", quick);
  json.field("cycle_source", cycle_counter_source());
  json.begin_array("runs");

  std::vector<PointRun> runs;
  for (const SweepPoint& point : sweep) {
    const PointRun run = run_point(point);
    runs.push_back(run);
    const double control_norm =
        run.control_per_step / (point.servers + point.tenants);
    std::printf(
        "  %7d instances (%4d servers x %3d, %3d tenants): launch %7.0f "
        "cyc (control %5.0f, legacy rebuild %11.0f), terminate %7.0f cyc "
        "(control %5.0f), step control %9.0f cyc (%6.1f cyc/(server+tenant), "
        "%5.2f cyc/inst), step %6.2f ms\n",
        run.instances, point.servers, point.max_per_server, point.tenants,
        run.launch_cycles, run.launch_control, run.legacy_rebuild,
        run.terminate_cycles, run.terminate_control, run.control_per_step,
        control_norm, run.control_per_step / run.instances,
        run.step_wall_seconds * 1e3);
    json.begin_object()
        .field("servers", point.servers)
        .field("max_per_server", point.max_per_server)
        .field("tenants", point.tenants)
        .field("instances", run.instances)
        .field("steps", point.steps)
        .field("launch_cycles", run.launch_cycles)
        .field("launch_control_cycles", run.launch_control)
        .field("legacy_rebuild_cycles", run.legacy_rebuild)
        .field("terminate_cycles", run.terminate_cycles)
        .field("terminate_control_cycles", run.terminate_control)
        .field("step_control_cycles", run.control_per_step)
        .field("step_control_cycles_per_server_tenant", control_norm)
        .field("step_control_cycles_per_instance",
               run.control_per_step / run.instances)
        .field("step_wall_seconds", run.step_wall_seconds)
        .end_object();
  }
  json.end_array();

  // Lane sweep on the largest point (the quick sweep's largest is tiny).
  const SweepPoint& digest_point = sweep.back();
  json.begin_array("digest_runs");
  bool digests_match = true;
  std::uint64_t reference = 0;
  for (const int lanes : {1, 2, 4, 8}) {
    const std::uint64_t digest = run_digest(digest_point, lanes);
    if (lanes == 1) reference = digest;
    digests_match = digests_match && digest == reference;
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx", (unsigned long long)digest);
    std::printf("  lanes=%d: digest %s%s\n", lanes, hex,
                digest == reference ? "" : "  DIVERGED");
    json.begin_object().field("lanes", lanes).field("digest", hex).end_object();
  }
  json.end_array();

  // Gates bind on the *control-plane* cycles. Total launch/terminate
  // cost includes the container runtime create/destroy, which is the
  // kernel subsystem's own cache-footprint story — reported, not gated.
  //
  //   launch_sublinear: per-launch control growth across the sweep must
  //     stay at or below half the server growth (16x servers -> <= 8x).
  //     O(log R) arithmetic would be ~1.4x, but at 1M containers the
  //     working set is ~3 GB and every miss costs more; the honest claim
  //     is "decoupled from fleet size", not "cache-free".
  //   rebuild_speedup: the re-measured legacy O(N) rebuild must lose to
  //     the new control plane at every point, and by >= 10x at the
  //     largest — the direct before/after on the algorithm replaced.
  //   step_control_flat: the step control phase is O(servers + tenants),
  //     so its per-instance cost must not grow as instances grow 256x
  //     (it falls: each server carries 16x more containers at the top).
  const PointRun& first = runs.front();
  const PointRun& last = runs.back();
  auto ratio = [](double a, double b) { return a > 0.0 ? b / a : 0.0; };
  const double launch_ratio = ratio(first.launch_control, last.launch_control);
  const double launch_total_ratio =
      ratio(first.launch_cycles, last.launch_cycles);
  const double terminate_ratio =
      ratio(first.terminate_control, last.terminate_control);
  const double server_growth =
      ratio(sweep.front().servers, sweep.back().servers);
  const double sublinear_limit = server_growth / 2.0;
  const double rebuild_speedup =
      ratio(last.launch_control, last.legacy_rebuild);
  const double rebuild_speedup_target = 10.0;
  bool beats_legacy_everywhere = true;
  for (const PointRun& run : runs) {
    beats_legacy_everywhere =
        beats_legacy_everywhere && run.launch_control < run.legacy_rebuild;
  }
  const double step_ratio =
      ratio(first.control_per_step / first.instances,
            last.control_per_step / last.instances);
  const double step_norm_ratio = ratio(
      first.control_per_step / (sweep.front().servers + sweep.front().tenants),
      last.control_per_step / (sweep.back().servers + sweep.back().tenants));
  // Timing gates only bind on the full sweep: the quick sweep runs under
  // sanitizers, where wall time means nothing.
  const bool launch_sublinear = quick || launch_ratio <= sublinear_limit;
  const bool rebuild_ok =
      quick ||
      (beats_legacy_everywhere && rebuild_speedup >= rebuild_speedup_target);
  const bool step_flat = quick || step_ratio <= flat_limit;
  json.field("max_instances", last.instances);
  json.field("launch_control_growth", launch_ratio);
  json.field("launch_total_ratio", launch_total_ratio);
  json.field("terminate_control_growth", terminate_ratio);
  json.field("server_growth", server_growth);
  json.field("launch_sublinear_limit", sublinear_limit);
  json.field("launch_sublinear", launch_sublinear);
  json.field("rebuild_speedup_largest", rebuild_speedup);
  json.field("rebuild_speedup_target", rebuild_speedup_target);
  json.field("beats_legacy_everywhere", beats_legacy_everywhere);
  json.field("rebuild_speedup_ok", rebuild_ok);
  json.field("step_control_per_instance_ratio", step_ratio);
  json.field("step_control_per_server_tenant_ratio", step_norm_ratio);
  json.field("flat_limit", flat_limit);
  json.field("step_control_flat", step_flat);
  json.field("digests_match", digests_match);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }

  std::printf("\nmax fleet: %d live instances\n", last.instances);
  std::printf(
      "per-launch control growth smallest->largest: %.2fx (limit %.1fx for "
      "%.0fx servers; total incl. create: %.2fx)\n",
      launch_ratio, sublinear_limit, server_growth, launch_total_ratio);
  std::printf(
      "vs legacy O(N) occupancy rebuild at %d instances: %.0fx faster "
      "(target >= %.0fx; new control plane wins at every point: %s)\n",
      last.instances, rebuild_speedup, rebuild_speedup_target,
      beats_legacy_everywhere ? "yes" : "NO");
  std::printf(
      "step control per instance: %.2fx (limit %.1fx; per (server+tenant): "
      "%.2fx)\n",
      step_ratio, flat_limit, step_norm_ratio);
  std::printf("lane digests identical: %s\n",
              digests_match ? "yes" : "NO — LANE-COUNT DIVERGENCE");
  std::printf("wrote %s\n", path.c_str());
  return launch_sublinear && rebuild_ok && step_flat && digests_match ? 0 : 1;
}
