// Fig 4: power consumption of a single server as an attacker aggregates
// co-resident containers onto it (§IV-C).
//
// The attacker repeatedly launches container instances on the cloud,
// verifies co-residence against its anchor through /proc/timer_list (the
// channel used in the paper's CC1 experiment), terminates misses, and
// keeps hits until three containers share one physical server. Each
// container then starts four copies of the Prime benchmark on its four
// dedicated cores, staggered, while the server's power is recorded. The
// acquisition loop is the scenario engine's kOrchestrated fleet placement.
//
// Paper headline: each container adds ~40 W; with three containers the
// attacker raises the server by ~120 W to ~230 W total.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/engine.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== Fig 4: aggregating containers on one server ==\n\n");

  sim::ScenarioSpec spec;
  spec.name = "fig4-coresident-attack";
  spec.datacenter.num_racks = 1;
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = false;  // isolate the attacker's contribution
  spec.datacenter.seed = 77;
  sim::ProviderSpec provider;
  provider.seed = 1234;
  spec.provider = provider;
  spec.fleet.placement = sim::FleetSpec::Placement::kOrchestrated;
  spec.fleet.count = 3;
  spec.fleet.tenant = "attacker";
  spec.fleet.max_launches = 100;
  sim::SimEngine engine(spec);

  const attack::OrchestratorResult& acquisition = engine.acquisition();
  if (!acquisition.success) {
    std::printf("failed to aggregate 3 co-resident instances\n");
    return 1;
  }
  std::printf(
      "orchestration: %d launches, %d verifications to place 3 containers "
      "on one server (paper: trivial effort)\n\n",
      acquisition.launches, acquisition.verifications);

  const int server_index = engine.provider().server_of(
      acquisition.instances.front()->instance_id);

  engine.run_steps(30, kSecond, {}, "settle");
  std::printf("t_s,server_w,phase\n");
  int t = 0;
  auto record = [&](int seconds, const std::string& phase) {
    engine.run_steps(
        seconds, kSecond,
        [&](sim::SimEngine& e, const sim::StepContext&) {
          ++t;
          if (t % 5 == 0) {
            std::printf("%d,%.1f,%s\n", t, e.server_power_w(server_index),
                        phase.c_str());
          }
        },
        phase);
  };

  record(30, "baseline");
  std::vector<double> levels = {engine.server_power_w(server_index)};

  const workload::Profile prime = workload::prime_fig4();
  for (int i = 0; i < engine.fleet_size(); ++i) {
    for (int copy = 0; copy < 4; ++copy) {
      engine.fleet_instance(i).run("prime95", prime.behavior);
    }
    record(60, "container" + std::to_string(i + 1));
    levels.push_back(engine.server_power_w(server_index));
  }

  std::printf("\nsummary:\n");
  std::printf("  baseline                : %.0f W\n", levels[0]);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    std::printf("  +container %zu           : %.0f W  (delta %.0f W)\n", i,
                levels[i], levels[i] - levels[i - 1]);
  }
  std::printf("  total attacker addition : %.0f W\n",
              levels.back() - levels.front());
  std::printf(
      "paper: ~40 W per container, ~230 W with three containers on one "
      "server\n");

  obs::BenchReport report("fig4_coresident_attack");
  engine.append_report_json(report.json());
  report.json().begin_array("levels_w");
  for (const double level : levels) report.json().element(level);
  report.json()
      .end_array()
      .field("addition_w", levels.back() - levels.front());
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
