// Fig 4: power consumption of a single server as an attacker aggregates
// co-resident containers onto it (§IV-C).
//
// The attacker repeatedly launches container instances on the cloud,
// verifies co-residence against its anchor through /proc/timer_list (the
// channel used in the paper's CC1 experiment), terminates misses, and
// keeps hits until three containers share one physical server. Each
// container then starts four copies of the Prime benchmark on its four
// dedicated cores, staggered, while the server's power is recorded.
//
// Paper headline: each container adds ~40 W; with three containers the
// attacker raises the server by ~120 W to ~230 W total.
#include <cstdio>
#include <vector>

#include "attack/orchestrator.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  cloud::DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 8;
  config.benign_load = false;  // isolate the attacker's contribution
  config.seed = 77;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 1234);

  std::printf("== Fig 4: aggregating containers on one server ==\n\n");

  coresidence::TimerImplantDetector detector;
  attack::CoResidenceOrchestrator orchestrator(provider, detector);
  const auto acquisition = orchestrator.acquire("attacker", 3, 100);
  if (!acquisition.success) {
    std::printf("failed to aggregate 3 co-resident instances\n");
    return 1;
  }
  std::printf(
      "orchestration: %d launches, %d verifications to place 3 containers "
      "on one server (paper: trivial effort)\n\n",
      acquisition.launches, acquisition.verifications);

  auto& server = dc.server(acquisition.instances.front()->server_index);
  auto settle = [&](int seconds) {
    for (int s = 0; s < seconds; ++s) provider.step(kSecond);
  };

  settle(30);
  std::printf("t_s,server_w,phase\n");
  double base_w = server.power_w();
  int t = 0;
  auto record = [&](int seconds, const char* phase) {
    for (int s = 0; s < seconds; ++s) {
      provider.step(kSecond);
      ++t;
      if (t % 5 == 0) std::printf("%d,%.1f,%s\n", t, server.power_w(), phase);
    }
  };

  record(30, "baseline");
  base_w = server.power_w();
  std::vector<double> levels = {base_w};

  const auto prime = workload::prime_fig4();
  int index = 0;
  for (const auto& instance : acquisition.instances) {
    ++index;
    for (int copy = 0; copy < 4; ++copy) {
      instance->handle->run("prime95", prime.behavior);
    }
    record(60, ("container" + std::to_string(index)).c_str());
    levels.push_back(server.power_w());
  }

  std::printf("\nsummary:\n");
  std::printf("  baseline                : %.0f W\n", levels[0]);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    std::printf("  +container %zu           : %.0f W  (delta %.0f W)\n", i,
                levels[i], levels[i] - levels[i - 1]);
  }
  std::printf("  total attacker addition : %.0f W\n",
              levels.back() - levels.front());
  std::printf(
      "paper: ~40 W per container, ~230 W with three containers on one "
      "server\n");
  return 0;
}
