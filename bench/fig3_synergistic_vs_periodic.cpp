// Fig 3: the power consumption of 8 servers under attack over 3,000 s —
// synergistic strategy vs. the periodic baseline (one spike every 300 s).
//
// The attacker holds one container on each of the 8 servers (orchestration
// per §IV-C is exercised separately in fig4). The synergistic attacker
// coordinates its containers: every container monitors its own server's
// power through the leaked RAPL channel, the aggregate is watched for a
// crest of the benign background, and all eight power viruses are
// superimposed exactly on the crest. The periodic baseline fires blindly
// every 300 seconds.
//
// Both strategies are the same declarative scenario (sim::fig3_fleet);
// only the fleet control mode differs per phase. The golden test in
// tests/sim_test.cpp pins this bench's headline numbers bit-for-bit.
//
// Paper headline: the synergistic attack reaches a 1,359 W spike with only
// two trials in 3,000 s; nine periodic launches top out at 1,280 W.
#include <cstdio>

#include "obs/export.h"
#include "sim/engine.h"
#include "sim/scenarios.h"

using namespace cleaks;

namespace {

struct RunResult {
  double peak_w = 0.0;
  int spikes = 0;
  double attack_seconds = 0.0;
};

void print_every_30s(sim::SimEngine&, const sim::StepContext& ctx) {
  if (ctx.index % 30 == 0) std::printf("%d,%.1f\n", ctx.index, ctx.total_w);
}

RunResult run_periodic(obs::JsonWriter& json) {
  sim::SimEngine engine(sim::fig3_fleet(attack::StrategyKind::kPeriodic));
  // Idle for the same two hours the synergistic attacker spends monitoring,
  // so both strategies attack the identical background window.
  engine.run_steps(7200, kSecond, {}, "idle");
  engine.reset_measurement();
  engine.set_fleet_control(sim::FleetSpec::Control::kAutonomous);
  std::printf("t_s,total_w\n");
  engine.run_steps(3000, kSecond, print_every_30s, "attack");

  json.begin_object("periodic");
  engine.append_report_json(json);
  json.end_object();
  // Trials = one attacker's launches: the periodic fleet fires in lockstep.
  return {engine.result().peak_total_w,
          engine.attacker(0).stats().spikes_launched,
          engine.fleet_attack_seconds()};
}

RunResult run_synergistic(obs::JsonWriter& json) {
  sim::SimEngine engine(sim::fig3_fleet(attack::StrategyKind::kSynergistic));
  // Two hours of pure monitoring before the attack window: monitoring is
  // nearly free under utilization billing (§IV-B), so the attacker can
  // afford to learn the background for as long as it likes.
  engine.set_fleet_control(sim::FleetSpec::Control::kMonitor);
  engine.run_steps(7200, kSecond, {}, "monitor");
  engine.reset_measurement();
  engine.set_fleet_control(sim::FleetSpec::Control::kCoordinated);
  std::printf("t_s,total_w\n");
  engine.run_steps(3000, kSecond, print_every_30s, "attack");

  json.begin_object("synergistic");
  engine.append_report_json(json);
  json.end_object();
  return {engine.result().peak_total_w, engine.crest_spikes(),
          engine.fleet_attack_seconds()};
}

}  // namespace

int main() {
  obs::BenchReport report("fig3_synergistic_vs_periodic");

  std::printf("== Fig 3: 8 servers under attack, 3000 s ==\n\n");
  std::printf("-- synergistic attack (RAPL-guided, coordinated) --\n");
  const RunResult synergistic = run_synergistic(report.json());
  std::printf("\n-- periodic attack (every 300 s) --\n");
  const RunResult periodic = run_periodic(report.json());

  std::printf("\nsummary:\n");
  std::printf("  strategy     peak_W   trials  attack_s(total)\n");
  std::printf("  synergistic  %6.0f   %6d  %8.0f\n", synergistic.peak_w,
              synergistic.spikes, synergistic.attack_seconds);
  std::printf("  periodic     %6.0f   %6d  %8.0f\n", periodic.peak_w,
              periodic.spikes, periodic.attack_seconds);
  std::printf(
      "\npaper: synergistic 1,359 W with 2 trials; periodic <= 1,280 W with "
      "9 trials\n");
  const bool shape_holds = synergistic.peak_w > periodic.peak_w &&
                           synergistic.spikes < periodic.spikes;
  std::printf("shape holds (higher spike, fewer trials): %s\n",
              shape_holds ? "YES" : "NO");

  report.json()
      .field("synergistic_peak_w", synergistic.peak_w)
      .field("periodic_peak_w", periodic.peak_w)
      .field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
