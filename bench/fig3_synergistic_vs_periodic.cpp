// Fig 3: the power consumption of 8 servers under attack over 3,000 s —
// synergistic strategy vs. the periodic baseline (one spike every 300 s).
//
// The attacker holds one container on each of the 8 servers (orchestration
// per §IV-C is exercised separately in fig4). The synergistic attacker
// coordinates its containers: every container monitors its own server's
// power through the leaked RAPL channel, the aggregate is watched for a
// crest of the benign background, and all eight power viruses are
// superimposed exactly on the crest. The periodic baseline fires blindly
// every 300 seconds.
//
// Paper headline: the synergistic attack reaches a 1,359 W spike with only
// two trials in 3,000 s; nine periodic launches top out at 1,280 W.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "attack/monitor.h"
#include "attack/strategy.h"
#include "cloud/datacenter.h"
#include "util/stats.h"

using namespace cleaks;

namespace {

struct RunResult {
  double peak_w = 0.0;
  int spikes = 0;
  double attack_seconds = 0.0;
};

struct Fleet {
  std::unique_ptr<cloud::Datacenter> dc;
  std::vector<std::shared_ptr<container::Container>> instances;
  std::vector<std::unique_ptr<attack::PowerAttacker>> attackers;
  std::vector<std::unique_ptr<attack::RaplMonitor>> monitors;
};

Fleet make_fleet(attack::StrategyKind kind) {
  Fleet fleet;
  cloud::DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 4248;  // identical background for both strategies
  fleet.dc = std::make_unique<cloud::Datacenter>(config);

  container::ContainerConfig cc;
  cc.num_cpus = 8;
  cc.memory_limit_bytes = 8ULL << 30;
  attack::AttackConfig attack_config;
  attack_config.kind = kind;
  attack_config.period = 300 * kSecond;
  attack_config.spike_duration = 15 * kSecond;

  // Fast-forward to the morning demand ramp (simulated t=0 is midnight):
  // attackers pick their window, and crests only exist where load moves.
  for (int server = 0; server < fleet.dc->num_servers(); ++server) {
    fleet.dc->server(server).host().set_tick_duration(5 * kSecond);
  }
  while (fleet.dc->now() < 9 * kHour) fleet.dc->step(30 * kSecond);
  for (int server = 0; server < fleet.dc->num_servers(); ++server) {
    fleet.dc->server(server).host().set_tick_duration(kSecond);
  }

  for (int server = 0; server < fleet.dc->num_servers(); ++server) {
    fleet.instances.push_back(fleet.dc->server(server).runtime().create(cc));
    fleet.attackers.push_back(std::make_unique<attack::PowerAttacker>(
        *fleet.instances.back(), attack_config));
    fleet.monitors.push_back(
        std::make_unique<attack::RaplMonitor>(*fleet.instances.back()));
  }
  return fleet;
}

RunResult run_periodic() {
  Fleet fleet = make_fleet(attack::StrategyKind::kPeriodic);
  RunResult result;
  // Idle for the same two hours the synergistic attacker spends monitoring,
  // so both strategies attack the identical background window.
  for (int second = 0; second < 7200; ++second) fleet.dc->step(kSecond);
  std::printf("t_s,total_w\n");
  for (int second = 0; second < 3000; ++second) {
    fleet.dc->step(kSecond);
    for (auto& attacker : fleet.attackers) {
      attacker->step(fleet.dc->now(), kSecond);
    }
    const double power = fleet.dc->total_power_w();
    result.peak_w = std::max(result.peak_w, power);
    if (second % 30 == 0) std::printf("%d,%.1f\n", second, power);
  }
  for (auto& attacker : fleet.attackers) {
    result.attack_seconds += attacker->stats().attack_seconds;
  }
  result.spikes = fleet.attackers.front()->stats().spikes_launched;
  return result;
}

RunResult run_synergistic() {
  Fleet fleet = make_fleet(attack::StrategyKind::kSynergistic);
  RunResult result;

  // The coordinated monitor: aggregate of what the eight containers read
  // through the leaked channel. Pure observation costs ~zero CPU (§IV-B).
  auto aggregate_sample = [&]() {
    double total = 0.0;
    for (auto& monitor : fleet.monitors) {
      total += monitor->sample_w(kSecond).value_or(0.0);
    }
    return total;
  };

  // Crest detector: a slowly decaying high-water mark of observed
  // background power. The attacker strikes only when the background is at
  // (or within 0.5% of) the highest level it has seen — the "insider
  // trading" timing of §IV-A. The decay (~3.5%/hour) lets the mark track
  // the diurnal cycle instead of being pinned by one stale record.
  double high_water_w = 0.0;
  auto observe = [&](double sample) {
    high_water_w = std::max(high_water_w * 0.99999, sample);
  };

  // Two hours of pure monitoring before the attack window: monitoring is
  // nearly free under utilization billing (§IV-B), so the attacker can
  // afford to learn the background for as long as it likes.
  for (int second = 0; second < 7200; ++second) {
    fleet.dc->step(kSecond);
    observe(aggregate_sample());
  }

  std::printf("t_s,total_w\n");
  SimTime spike_end = 0;
  SimTime cooldown_until = 0;
  bool attacking = false;
  for (int second = 0; second < 3000; ++second) {
    fleet.dc->step(kSecond);
    const double sample = aggregate_sample();
    const SimTime now = fleet.dc->now();

    if (attacking) {
      if (now >= spike_end) {
        for (auto& attacker : fleet.attackers) attacker->stop_virus();
        attacking = false;
        cooldown_until = now + 600 * kSecond;
      }
      result.attack_seconds += 8.0;
    } else {
      observe(sample);
      if (now >= cooldown_until && result.spikes < 2 &&
          sample >= high_water_w * 0.995) {
        for (auto& attacker : fleet.attackers) attacker->start_virus();
        attacking = true;
        spike_end = now + 15 * kSecond;
        ++result.spikes;
      }
    }
    const double power = fleet.dc->total_power_w();
    result.peak_w = std::max(result.peak_w, power);
    if (second % 30 == 0) std::printf("%d,%.1f\n", second, power);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Fig 3: 8 servers under attack, 3000 s ==\n\n");
  std::printf("-- synergistic attack (RAPL-guided, coordinated) --\n");
  const auto synergistic = run_synergistic();
  std::printf("\n-- periodic attack (every 300 s) --\n");
  const auto periodic = run_periodic();

  std::printf("\nsummary:\n");
  std::printf("  strategy     peak_W   trials  attack_s(total)\n");
  std::printf("  synergistic  %6.0f   %6d  %8.0f\n", synergistic.peak_w,
              synergistic.spikes, synergistic.attack_seconds);
  std::printf("  periodic     %6.0f   %6d  %8.0f\n", periodic.peak_w,
              periodic.spikes, periodic.attack_seconds);
  std::printf(
      "\npaper: synergistic 1,359 W with 2 trials; periodic <= 1,280 W with "
      "9 trials\n");
  const bool shape_holds = synergistic.peak_w > periodic.peak_w &&
                           synergistic.spikes < periodic.spikes;
  std::printf("shape holds (higher spike, fewer trials): %s\n",
              shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
