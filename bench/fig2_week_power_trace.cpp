// Fig 2: whole-system power consumption of 8 servers in a container cloud
// over one week, observed through the leaked RAPL channel (30-second
// averages), plus the 1-second zoom into a high-consumption region.
//
// Paper headline numbers: drastic changes on two of the days, a peak of
// ~1,199 W at 1 s granularity, and a 34.72% (899 W ~ 1,199 W) range.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cloud/datacenter.h"
#include "util/stats.h"

using namespace cleaks;

int main() {
  cloud::DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 2017;
  cloud::Datacenter dc(config);
  for (int server = 0; server < dc.num_servers(); ++server) {
    dc.server(server).host().set_tick_duration(5 * kSecond);
  }

  std::printf("== Fig 2: power of 8 servers over one week (30 s avg) ==\n");
  std::printf("time_h,total_w\n");

  std::vector<double> avg30;
  RunningStats week;
  const int steps = 7 * 24 * 60 * 2;  // 30 s steps over 7 days
  double best_window_power = 0.0;
  int best_window_step = 0;
  for (int step = 0; step < steps; ++step) {
    dc.step(30 * kSecond);
    const double power = dc.total_power_w();
    avg30.push_back(power);
    week.add(power);
    if (power > best_window_power) {
      best_window_power = power;
      best_window_step = step;
    }
    if (step % 60 == 0) {  // print one point per simulated half hour
      std::printf("%.2f,%.1f\n", to_seconds(dc.now()) / 3600.0, power);
    }
  }

  // Zoom: re-observe a high-power region at 1-second granularity, the
  // window size that matters for spike generation.
  for (int server = 0; server < dc.num_servers(); ++server) {
    dc.server(server).host().set_tick_duration(kSecond);
  }
  double peak_1s = 0.0;
  for (int second = 0; second < 120; ++second) {
    dc.step(kSecond);
    peak_1s = std::max(peak_1s, dc.total_power_w());
  }

  const double low = percentile(avg30, 2.0);
  const double high = std::max(week.max(), peak_1s);
  std::printf("\nsummary:\n");
  std::printf("  mean power          : %.0f W\n", week.mean());
  std::printf("  2nd pct (trough)    : %.0f W\n", low);
  std::printf("  30 s-avg peak       : %.0f W (hour %.1f)\n", week.max(),
              best_window_step * 30.0 / 3600.0);
  std::printf("  1 s peak (zoom)     : %.0f W\n", peak_1s);
  std::printf("  peak-to-trough range: %.1f%%\n", (high - low) / high * 100.0);
  std::printf(
      "paper: 1 s peak 1,199 W; 34.72%% range (899 W ~ 1,199 W) over the "
      "week\n");
  return 0;
}
