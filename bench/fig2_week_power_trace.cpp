// Fig 2: whole-system power consumption of 8 servers in a container cloud
// over one week, observed through the leaked RAPL channel (30-second
// averages), plus the 1-second zoom at the window size that matters for
// spike generation.
//
// Paper headline numbers: drastic changes on two of the days, a peak of
// ~1,199 W at 1 s granularity, and a 34.72% (899 W ~ 1,199 W) range.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/export.h"
#include "sim/engine.h"
#include "util/stats.h"

using namespace cleaks;

int main() {
  sim::ScenarioSpec spec;
  spec.name = "fig2-week-trace";
  spec.datacenter.num_racks = 1;
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 2017;
  spec.host_tick = 5 * kSecond;
  sim::SimEngine engine(spec);

  std::printf("== Fig 2: power of 8 servers over one week (30 s avg) ==\n");
  std::printf("time_h,total_w\n");

  std::vector<double> avg30;
  RunningStats week;
  const int steps = 7 * 24 * 60 * 2;  // 30 s steps over 7 days
  double best_window_power = 0.0;
  int best_window_step = 0;
  engine.run_steps(
      steps, 30 * kSecond,
      [&](sim::SimEngine&, const sim::StepContext& ctx) {
        avg30.push_back(ctx.total_w);
        week.add(ctx.total_w);
        if (ctx.total_w > best_window_power) {
          best_window_power = ctx.total_w;
          best_window_step = ctx.index;
        }
        if (ctx.index % 60 == 0) {  // print one point per simulated half hour
          std::printf("%.2f,%.1f\n", to_seconds(ctx.now) / 3600.0, ctx.total_w);
        }
      },
      "week");

  // Zoom: drop to 1-second granularity and keep observing. The trace
  // continues from where the week ended (the post-midnight trough), so the
  // zoomed peak sits well below the 30 s-avg peak — the summary takes the
  // max over both windows.
  engine.set_host_tick(kSecond);
  engine.reset_measurement();
  engine.run_steps(120, kSecond, {}, "zoom");
  const double peak_1s = engine.result().peak_total_w;

  const double low = percentile(avg30, 2.0);
  const double high = std::max(week.max(), peak_1s);
  std::printf("\nsummary:\n");
  std::printf("  mean power          : %.0f W\n", week.mean());
  std::printf("  2nd pct (trough)    : %.0f W\n", low);
  std::printf("  30 s-avg peak       : %.0f W (hour %.1f)\n", week.max(),
              best_window_step * 30.0 / 3600.0);
  std::printf("  1 s peak (zoom)     : %.0f W\n", peak_1s);
  std::printf("  peak-to-trough range: %.1f%%\n", (high - low) / high * 100.0);
  std::printf(
      "paper: 1 s peak 1,199 W; 34.72%% range (899 W ~ 1,199 W) over the "
      "week\n");

  obs::BenchReport report("fig2_week_power_trace");
  engine.append_report_json(report.json());
  report.json()
      .field("mean_w", week.mean())
      .field("trough_p2_w", low)
      .field("peak_30s_w", week.max())
      .field("peak_1s_w", peak_1s)
      .field("range_pct", (high - low) / high * 100.0);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
