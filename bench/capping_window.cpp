// §II-C / §IV-A: the power-capping latency gap.
//
// "Although host-level power capping for a single server could respond
// immediately to power surges, the power capping mechanisms at the rack or
// PDU level still suffer from minute-level delays" — leaving the window in
// which a short synchronized spike can trip the breaker. This bench
// measures both reaction times in the simulator:
//   (a) host-level RAPL capping: seconds until a saturating workload is
//       throttled below the package cap (bare kernel::Host — below the
//       scenario layer on purpose);
//   (b) rack-level capping (minute-interval average feedback): whether a
//       30-second 8-server spike completes before any throttling lands —
//       a scenario with a deferred-deploy fleet.
#include <algorithm>
#include <cstdio>

#include "obs/export.h"
#include "sim/engine.h"
#include "workload/profiles.h"

using namespace cleaks;

namespace {

/// The capped-rack facility shared by parts (b) and (c).
sim::ScenarioSpec capped_rack_spec(const char* name) {
  sim::ScenarioSpec spec;
  spec.name = name;
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 32;
  spec.datacenter.rack_power_cap_w = 1500.0;
  spec.datacenter.capping_interval = kMinute;
  container::ContainerConfig cc;
  cc.num_cpus = 8;
  spec.fleet.placement = sim::FleetSpec::Placement::kOnePerServer;
  spec.fleet.container = cc;
  spec.fleet.deploy_on_build = false;  // the spike is fired mid-run
  return spec;
}

}  // namespace

int main() {
  std::printf("== power-capping reaction windows ==\n\n");

  // --- (a) host-level RAPL cap ---
  auto hwspec = hw::testbed_i7_6700();
  hwspec.rapl_power_cap_w = 50.0;
  kernel::Host host("capped", hwspec, 31);
  host.set_tick_duration(100 * kMillisecond);
  auto virus = workload::power_virus();
  for (int i = 0; i < hwspec.num_cores; ++i) {
    host.spawn_task({.comm = "virus", .behavior = virus.behavior});
  }
  host.advance(200 * kMillisecond);
  const double host_peak_w = host.last_tick_power_w();
  double host_reaction_s = -1.0;
  for (int tick = 1; tick <= 600; ++tick) {  // 60 s of 100 ms ticks
    host.advance(100 * kMillisecond);
    // Fully engaged throttle: the DVFS floor (50% frequency) is reached,
    // roughly halving the dynamic power.
    if (host.last_tick_power_w() <= host_peak_w * 0.62) {
      host_reaction_s = tick * 0.1;
      break;
    }
  }
  std::printf(
      "host-level RAPL cap (50 W): throttle fully engaged within %.1f s "
      "(%.0f W -> %.0f W)\n",
      host_reaction_s, host_peak_w, host.last_tick_power_w());

  // --- (b) rack-level capping, 60 s feedback interval ---
  sim::SimEngine engine(capped_rack_spec("capping-spike"));
  // Settle, then fire a synchronized 30 s fleet-wide spike.
  engine.run_steps(90, kSecond, {}, "settle");
  engine.deploy_fleet();
  engine.fleet_run("spike", virus.behavior, 8);
  double spike_peak = 0.0;
  double spike_min = 1e9;
  engine.run_steps(
      30, kSecond,
      [&](sim::SimEngine& e, const sim::StepContext&) {
        spike_peak = std::max(spike_peak, e.rack_power_w(0));
        spike_min = std::min(spike_min, e.rack_power_w(0));
      },
      "spike");
  engine.destroy_fleet();
  const double rack_cap_w = engine.spec().datacenter.rack_power_cap_w;
  const bool spike_survived = spike_min > rack_cap_w;
  std::printf(
      "rack-level cap (1500 W, 60 s loop): 30 s spike ran at %.0f-%.0f W — "
      "%s\n",
      spike_min, spike_peak,
      spike_survived ? "never throttled inside the window"
                     : "was throttled mid-spike");

  // Longer overload IS eventually caught by the rack loop: fresh facility,
  // load starts right after a feedback check so the full interval must
  // elapse before enforcement.
  sim::SimEngine engine2(capped_rack_spec("capping-sustained"));
  engine2.run_steps(61, kSecond, {}, "settle");
  engine2.deploy_fleet();
  engine2.fleet_run("sustained", virus.behavior, 8);
  double sustained_baseline = 0.0;
  double sustained_reaction_s = -1.0;
  for (int second = 1; second <= 300; ++second) {
    engine2.step(kSecond);
    if (second == 5) sustained_baseline = engine2.rack_power_w(0);
    if (second > 5 && engine2.rack_power_w(0) < sustained_baseline * 0.85) {
      sustained_reaction_s = second;
      break;
    }
  }
  std::printf(
      "rack-level cap vs sustained overload: enforcement bites after %.0f s\n",
      sustained_reaction_s);

  std::printf(
      "\npaper: host capping reacts at ms level; rack/PDU capping has "
      "minute-level delay — short spikes fit inside the gap\n");
  const bool shape_holds = host_reaction_s > 0 && host_reaction_s < 10.0 &&
                           spike_survived && sustained_reaction_s > 20.0;
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");

  obs::BenchReport report("capping_window");
  report.json()
      .field("host_reaction_s", host_reaction_s)
      .field("host_peak_w", host_peak_w)
      .field("spike_min_w", spike_min)
      .field("spike_peak_w", spike_peak)
      .field("spike_survived", spike_survived)
      .field("sustained_reaction_s", sustained_reaction_s)
      .field("shape_holds", shape_holds);
  report.json().begin_object("spike");
  engine.append_report_json(report.json());
  report.json().end_object().begin_object("sustained");
  engine2.append_report_json(report.json());
  report.json().end_object();
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
