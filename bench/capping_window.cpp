// §II-C / §IV-A: the power-capping latency gap.
//
// "Although host-level power capping for a single server could respond
// immediately to power surges, the power capping mechanisms at the rack or
// PDU level still suffer from minute-level delays" — leaving the window in
// which a short synchronized spike can trip the breaker. This bench
// measures both reaction times in the simulator:
//   (a) host-level RAPL capping: seconds until a saturating workload is
//       throttled below the package cap;
//   (b) rack-level capping (minute-interval average feedback): whether a
//       30-second 8-server spike completes before any throttling lands.
#include <cstdio>

#include "cloud/datacenter.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== power-capping reaction windows ==\n\n");

  // --- (a) host-level RAPL cap ---
  auto spec = hw::testbed_i7_6700();
  spec.rapl_power_cap_w = 50.0;
  kernel::Host host("capped", spec, 31);
  host.set_tick_duration(100 * kMillisecond);
  auto virus = workload::power_virus();
  for (int i = 0; i < spec.num_cores; ++i) {
    host.spawn_task({.comm = "virus", .behavior = virus.behavior});
  }
  host.advance(200 * kMillisecond);
  const double host_peak_w = host.last_tick_power_w();
  double host_reaction_s = -1.0;
  for (int tick = 1; tick <= 600; ++tick) {  // 60 s of 100 ms ticks
    host.advance(100 * kMillisecond);
    // Fully engaged throttle: the DVFS floor (50% frequency) is reached,
    // roughly halving the dynamic power.
    if (host.last_tick_power_w() <= host_peak_w * 0.62) {
      host_reaction_s = tick * 0.1;
      break;
    }
  }
  std::printf(
      "host-level RAPL cap (50 W): throttle fully engaged within %.1f s "
      "(%.0f W -> %.0f W)\n",
      host_reaction_s, host_peak_w, host.last_tick_power_w());

  // --- (b) rack-level capping, 60 s feedback interval ---
  cloud::DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 32;
  config.rack_power_cap_w = 1500.0;
  config.capping_interval = kMinute;
  cloud::Datacenter dc(config);
  // Settle, then fire a synchronized 30 s fleet-wide spike.
  for (int second = 0; second < 90; ++second) dc.step(kSecond);
  std::vector<std::shared_ptr<container::Container>> attackers;
  for (int server = 0; server < dc.num_servers(); ++server) {
    container::ContainerConfig cc;
    cc.num_cpus = 8;
    auto instance = dc.server(server).runtime().create(cc);
    for (int copy = 0; copy < 8; ++copy) instance->run("spike", virus.behavior);
    attackers.push_back(instance);
  }
  double spike_peak = 0.0;
  double spike_min = 1e9;
  for (int second = 0; second < 30; ++second) {
    dc.step(kSecond);
    spike_peak = std::max(spike_peak, dc.rack_power_w(0));
    spike_min = std::min(spike_min, dc.rack_power_w(0));
  }
  for (int server = 0; server < dc.num_servers(); ++server) {
    dc.server(server).runtime().destroy(attackers[server]->id());
  }
  const bool spike_survived = spike_min > config.rack_power_cap_w;
  std::printf(
      "rack-level cap (1500 W, 60 s loop): 30 s spike ran at %.0f-%.0f W — "
      "%s\n",
      spike_min, spike_peak,
      spike_survived ? "never throttled inside the window"
                     : "was throttled mid-spike");

  // Longer overload IS eventually caught by the rack loop: fresh facility,
  // load starts right after a feedback check so the full interval must
  // elapse before enforcement.
  cloud::Datacenter dc2(config);
  for (int second = 0; second < 61; ++second) dc2.step(kSecond);
  for (int server = 0; server < dc2.num_servers(); ++server) {
    container::ContainerConfig cc;
    cc.num_cpus = 8;
    auto instance = dc2.server(server).runtime().create(cc);
    for (int copy = 0; copy < 8; ++copy) instance->run("sustained", virus.behavior);
  }
  double sustained_baseline = 0.0;
  double sustained_reaction_s = -1.0;
  for (int second = 1; second <= 300; ++second) {
    dc2.step(kSecond);
    if (second == 5) sustained_baseline = dc2.rack_power_w(0);
    if (second > 5 && dc2.rack_power_w(0) < sustained_baseline * 0.85) {
      sustained_reaction_s = second;
      break;
    }
  }
  std::printf(
      "rack-level cap vs sustained overload: enforcement bites after %.0f s\n",
      sustained_reaction_s);

  std::printf(
      "\npaper: host capping reacts at ms level; rack/PDU capping has "
      "minute-level delay — short spikes fit inside the gap\n");
  const bool shape_holds = host_reaction_s > 0 && host_reaction_s < 10.0 &&
                           spike_survived && sustained_reaction_s > 20.0;
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
