// Covert-channel capacity over the leaked channels (§III-C's closing
// remark; methodology follows the thermal covert-channel papers the
// related-work section cites). For each medium the bench transmits a
// random payload between two co-resident containers on a *busy* host and
// reports bit-error rate and Shannon capacity; the cross-host pair and the
// defended host (power-based namespace) provide the control rows.
#include <cstdio>
#include <iostream>

#include "containerleaks.h"
#include "coresidence/covert.h"
#include "obs/export.h"

using namespace cleaks;

namespace {

struct Scenario {
  std::string label;
  coresidence::CovertResult result;
};

struct ReportRow {
  std::string medium;
  std::string scenario;
  double ber = 0.0;
  double capacity_bps = 0.0;
};

coresidence::CovertResult measure(cloud::Server& server,
                                  container::Container& tx,
                                  container::Container& rx,
                                  coresidence::CovertMedium medium,
                                  SimDuration slot, SimDuration guard) {
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { server.step(dt); };
  coresidence::CovertConfig config;
  config.medium = medium;
  config.slot = slot;
  config.guard = guard;
  coresidence::CovertChannelBenchmark channel(tx, rx, env, config);
  return channel.run(/*bits=*/48);
}

}  // namespace

int main() {
  std::printf("== covert-channel capacity over leaked channels ==\n\n");

  TablePrinter table(
      {"medium", "scenario", "slot", "BER", "capacity(bit/s)"});
  bool shape_holds = true;
  std::vector<ReportRow> report_rows;

  struct MediumSpec {
    coresidence::CovertMedium medium;
    SimDuration slot;
    SimDuration guard;
  };
  const std::vector<MediumSpec> media = {
      {coresidence::CovertMedium::kPower, 2 * kSecond, 0},
      {coresidence::CovertMedium::kUtilization, 2 * kSecond, 0},
      {coresidence::CovertMedium::kThermal, 8 * kSecond, 4 * kSecond},
  };

  for (const auto& spec : media) {
    // Same host, benign load running (a noisy but real link).
    cloud::Server server("covert", cloud::local_testbed(), 4040, 10 * kDay);
    server.enable_benign_load(17);
    container::ContainerConfig cc;
    cc.num_cpus = 4;
    auto tx = server.runtime().create(cc);
    auto rx = server.runtime().create(cc);
    server.step(5 * kSecond);
    const auto co_resident =
        measure(server, *tx, *rx, spec.medium, spec.slot, spec.guard);
    table.add_row({to_string(spec.medium), "co-resident",
                   fixed(to_seconds(spec.slot), 0) + "s",
                   fixed(co_resident.bit_error_rate(), 3),
                   fixed(co_resident.capacity_bps(), 3)});
    report_rows.push_back({to_string(spec.medium), "co-resident",
                           co_resident.bit_error_rate(),
                           co_resident.capacity_bps()});
    // A usable link: at least 40% of the raw slot rate survives the noise.
    shape_holds = shape_holds && co_resident.capacity_bps() >
                                     co_resident.raw_rate_bps() * 0.4;

    // Cross-host control: the medium carries no signal.
    cloud::Server other("covert-other", cloud::local_testbed(), 5050,
                        12 * kDay);
    other.enable_benign_load(18);
    auto rx_far = other.runtime().create(cc);
    coresidence::ProbeEnv env;
    env.advance = [&](SimDuration dt) {
      server.step(dt);
      other.step(dt);
    };
    coresidence::CovertConfig config;
    config.medium = spec.medium;
    config.slot = spec.slot;
    config.guard = spec.guard;
    coresidence::CovertChannelBenchmark cross(*tx, *rx_far, env, config);
    const auto cross_host = cross.run(48);
    table.add_row({to_string(spec.medium), "cross-host",
                   fixed(to_seconds(spec.slot), 0) + "s",
                   fixed(cross_host.bit_error_rate(), 3),
                   fixed(cross_host.capacity_bps(), 3)});
    report_rows.push_back({to_string(spec.medium), "cross-host",
                           cross_host.bit_error_rate(),
                           cross_host.capacity_bps()});
    shape_holds =
        shape_holds && cross_host.capacity_bps() < co_resident.capacity_bps() * 0.3;
  }

  // Defense row: power medium with the power-based namespace enabled.
  {
    cloud::Server server("covert-def", cloud::local_testbed(), 6060, 10 * kDay);
    auto model = defense::train_default_model(6061);
    defense::PowerNamespace power_ns(server.runtime(),
                                     std::move(model).value());
    container::ContainerConfig cc;
    cc.num_cpus = 4;
    auto tx = server.runtime().create(cc);
    auto rx = server.runtime().create(cc);
    power_ns.enable();
    server.step(5 * kSecond);
    const auto defended = measure(server, *tx, *rx,
                                  coresidence::CovertMedium::kPower,
                                  2 * kSecond, 0);
    table.add_row({"power(RAPL)", "co-res + power-ns", "2s",
                   fixed(defended.bit_error_rate(), 3),
                   fixed(defended.capacity_bps(), 3)});
    report_rows.push_back({"power(RAPL)", "co-res + power-ns",
                           defended.bit_error_rate(),
                           defended.capacity_bps()});
    shape_holds = shape_holds && defended.capacity_bps() < 0.1;
  }

  table.print(std::cout);
  std::printf(
      "\npaper context: Table II marks these channels ◐/● manipulable and\n"
      "notes they can carry covert signals; the power-based namespace cuts\n"
      "the RAPL medium to ~zero capacity while the hardware channels remain\n"
      "until masked.\n");
  std::printf("shape holds (co-res >> cross-host; defense kills the RAPL "
              "medium): %s\n",
              shape_holds ? "YES" : "NO");

  obs::BenchReport report("covert_channel_capacity");
  report.json().begin_array("links");
  for (const auto& row : report_rows) {
    report.json()
        .begin_object()
        .field("medium", row.medium)
        .field("scenario", row.scenario)
        .field("ber", row.ber)
        .field("capacity_bps", row.capacity_bps)
        .end_object();
  }
  report.json().end_array().field("shape_holds", shape_holds);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return shape_holds ? 0 : 1;
}
