// Table I: leakage channels in commercial container cloud services.
//
// Runs the Fig-1 cross-validation tool against the local Docker testbed and
// one server of each simulated cloud profile CC1..CC5, then prints the
// channel x cloud availability matrix with the paper's legend:
//   ● channel leaks host data   ◐ partial (tenant-scoped but host-coupled)
//   ○ unavailable (masked by policy or hardware absent)
#include <cstdio>
#include <iostream>

#include "cloud/profiles.h"
#include "leakage/inspector.h"
#include "obs/export.h"
#include "util/table.h"

using namespace cleaks;

int main() {
  std::printf("== Table I: leakage channels in container cloud services ==\n\n");

  std::vector<cloud::CloudServiceProfile> profiles = {cloud::local_testbed()};
  for (auto& profile : cloud::all_commercial_clouds()) {
    profiles.push_back(profile);
  }
  leakage::CloudInspector inspector(profiles, /*seed=*/2016);
  const auto matrix = inspector.inspect();

  TablePrinter table({"Leakage Channel", "Leaked Information", "Co-re", "DoS",
                      "Leak", "local", "CC1", "CC2", "CC3", "CC4", "CC5"});
  int leaking_rows_local = 0;
  for (const auto& row : matrix) {
    auto flag = [](bool value) { return value ? "●" : "○"; };
    std::vector<std::string> cells = {
        row.channel.row,
        row.channel.description,
        flag(row.channel.vuln_coresidence),
        flag(row.channel.vuln_dos),
        flag(row.channel.vuln_info_leak),
    };
    for (const auto& profile : profiles) {
      cells.push_back(
          leakage::CloudInspector::symbol(row.per_cloud.at(profile.name)));
    }
    if (row.per_cloud.at("local") == leakage::LeakClass::kLeaking) {
      ++leaking_rows_local;
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  int cc_leaks = 0;
  int cc_cells = 0;
  for (const auto& row : matrix) {
    for (const auto& profile : profiles) {
      if (profile.name == "local") continue;
      ++cc_cells;
      if (row.per_cloud.at(profile.name) == leakage::LeakClass::kLeaking) {
        ++cc_leaks;
      }
    }
  }

  obs::BenchReport report("table1_leakage_channels");
  report.json().begin_array("matrix");
  for (const auto& row : matrix) {
    report.json().begin_object().field("channel", row.channel.row);
    report.json().begin_object("per_cloud");
    for (const auto& profile : profiles) {
      report.json().field(
          profile.name,
          leakage::to_string(row.per_cloud.at(profile.name)));
    }
    report.json().end_object().end_object();
  }
  report.json()
      .end_array()
      .field("leaking_rows_local", leaking_rows_local)
      .field("cc_leaking_cells", cc_leaks)
      .field("cc_cells", cc_cells);
  const std::string json_path = report.write();
  if (!json_path.empty()) std::printf("wrote %s\n", json_path.c_str());

  std::printf(
      "\nsummary: %d/21 channels leak on the local testbed; "
      "%d/%d channel-cloud cells leak across CC1..CC5\n",
      leaking_rows_local, cc_leaks, cc_cells);
  std::printf(
      "paper:   all 21 channels leak locally; most remain exploitable in the "
      "clouds, with per-provider masking/hardware gaps\n");
  return 0;
}
