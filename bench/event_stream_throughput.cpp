// Overhead budget of the event bus on the step hot path: a 16-server
// facility stepped 120 s on a single lane with the bus disabled (one
// relaxed load per would-be emission) versus enabled with no consumer
// (every Host emits its 4 per-tick events into the rings). The enabled
// path must keep >= 95% of the disabled throughput, and both modes must
// produce the bitwise-identical power trace — telemetry observes the sim,
// never perturbs it. Wall-clock is best-of-3 per mode with retry rounds
// so a noisy-neighbour blip doesn't fail the build.
//
// A second section exercises the consumer stack end to end on a small
// provider workload (container churn + faults would be overkill here:
// lifecycle + cgroup + per-tick samples suffice) and writes the sample
// artifacts CI validates: TRACE_event_stream_sample.json (Chrome trace)
// and FLIGHT_event_stream_sample.json (cleaks-events-v1 recorder dump).
//
// Emits BENCH_event_stream_throughput.json (cleaks-bench-v1).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/provider.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "util/thread_pool.h"

// Sanitizer instrumentation skews wall-clock enough that the 5% overhead
// budget is noise, not signal; those builds still enforce the digest,
// event-count and zero-drop checks and report the ratio informationally.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CLEAKS_INSTRUMENTED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CLEAKS_INSTRUMENTED_BUILD 1
#endif
#endif
#ifndef CLEAKS_INSTRUMENTED_BUILD
#define CLEAKS_INSTRUMENTED_BUILD 0
#endif

using namespace cleaks;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a over the per-step power trace: witnesses that enabling the bus
/// changes no simulated bit.
struct Digest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add_double(double value) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
    for (std::size_t i = 0; i < sizeof value; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
};

cloud::DatacenterConfig facility() {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 8;
  config.rack_breaker.rated_w = 8000.0;
  config.rack_power_cap_w = 6500.0;
  config.seed = 11;
  // Single lane: pure per-step emission cost, and ring wraps (if the
  // capacity were ever tiny) stay deterministic — see obs/events.h.
  config.num_threads = 1;
  return config;
}

constexpr int kSteps = 120;
// The datacenter profile's host tick matches the 1 s facility step, so
// each step is one run_tick per server, emitting 4 events (ctx-switch,
// perf, RAPL, thermal).
constexpr std::uint64_t kEventsPerServerStep = 4;

struct ModeRun {
  double seconds = 0.0;
  std::uint64_t power_digest = 0;
  std::uint64_t events = 0;  ///< drained after the timed loop (enabled only)
};

ModeRun run_mode(bool bus_enabled) {
  auto& bus = obs::EventBus::global();
  (void)bus.drain();  // start from empty rings
  bus.set_enabled(bus_enabled);
  cloud::Datacenter dc(facility());
  Digest digest;
  const double start = now_seconds();
  for (int tick = 0; tick < kSteps; ++tick) {
    dc.step(kSecond);
    digest.add_double(dc.total_power_w());
  }
  const double elapsed = now_seconds() - start;
  ModeRun run;
  run.seconds = elapsed;
  run.power_digest = digest.hash;
  run.events = bus.drain().size();
  bus.set_enabled(false);
  return run;
}

/// Best wall-clock of `reps` runs; digest and event count must agree
/// across reps (they are pure functions of the config).
ModeRun best_of(int reps, bool bus_enabled) {
  ModeRun best = run_mode(bus_enabled);
  for (int rep = 1; rep < reps; ++rep) {
    const ModeRun run = run_mode(bus_enabled);
    if (run.seconds < best.seconds) best.seconds = run.seconds;
  }
  return best;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) ==
                  text.size();
  return std::fclose(file) == 0 && ok;
}

/// Drive the consumer stack on a small provider workload and write the
/// sample artifacts. Returns false on I/O failure.
bool write_sample_artifacts(obs::JsonWriter& json) {
  auto& bus = obs::EventBus::global();
  (void)bus.drain();
  bus.set_enabled(true);

  cloud::DatacenterConfig config = facility();
  config.num_racks = 1;
  config.servers_per_rack = 4;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 5);

  obs::FlightRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_window(60 * kSecond);
  obs::WindowAggregator aggregator(10 * kSecond);

  std::vector<obs::Event> all;
  auto drain_into = [&] {
    const auto batch = bus.drain();
    recorder.feed(batch);
    aggregator.feed(batch);
    all.insert(all.end(), batch.begin(), batch.end());
  };

  auto tenant_a = provider.launch("tenant-a");
  auto tenant_b = provider.launch("tenant-b");
  for (int tick = 0; tick < 30; ++tick) {
    provider.step(kSecond);
    if (tick == 20) provider.terminate(tenant_b->instance_id);
    drain_into();
  }
  provider.terminate(tenant_a->instance_id);
  drain_into();
  aggregator.flush();
  bus.set_enabled(false);

  const std::string trace_path =
      obs::bench_dir() + "/TRACE_event_stream_sample.json";
  if (!write_text_file(trace_path, obs::to_chrome_trace(all))) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return false;
  }
  const std::string flight_path =
      recorder.dump_to_file("event_stream_sample");
  if (flight_path.empty()) {
    std::fprintf(stderr, "cannot write flight sample\n");
    return false;
  }
  std::printf("wrote %s\n", trace_path.c_str());
  std::printf("wrote %s\n", flight_path.c_str());

  json.field("sample_events", static_cast<std::uint64_t>(all.size()));
  json.field("sample_windows",
             static_cast<std::uint64_t>(aggregator.windows().size()));
  json.field("sample_window_digest", aggregator.digest());
  json.field("trace_artifact", "TRACE_event_stream_sample.json");
  json.field("flight_artifact", "FLIGHT_event_stream_sample.json");
  return !all.empty() && !aggregator.windows().empty();
}

}  // namespace

int main() {
  std::printf("== event stream throughput (16 servers, %d s, 1 lane) ==\n",
              kSteps);
  // No consumer runs during the timed loop; the default per-lane ring
  // (65536) comfortably holds the whole run's 7 680 events.
  constexpr double kMinRatio = CLEAKS_INSTRUMENTED_BUILD ? 0.0 : 0.95;
  constexpr int kReps = 3;
  constexpr int kRounds = 4;
  if (CLEAKS_INSTRUMENTED_BUILD) {
    std::printf("  (sanitizer build: overhead ratio is informational)\n");
  }

  ModeRun disabled;
  ModeRun enabled;
  double ratio = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    disabled = best_of(kReps, false);
    enabled = best_of(kReps, true);
    ratio = enabled.seconds > 0.0 ? disabled.seconds / enabled.seconds : 0.0;
    std::printf(
        "  round %d: disabled %7.1f ms, enabled %7.1f ms  (%.3fx "
        "throughput)\n",
        round, disabled.seconds * 1e3, enabled.seconds * 1e3, ratio);
    if (ratio >= kMinRatio) break;  // overhead within budget
  }

  const bool digests_match = enabled.power_digest == disabled.power_digest;
  const bool overhead_ok = obs::bench_check(
      ratio >= kMinRatio, "event_stream_throughput",
      "event emission costs more than 5% of step throughput");
  const bool perturbation_ok = obs::bench_check(
      digests_match, "event_stream_throughput",
      "power trace digest changed when the bus was enabled");
  const std::uint64_t expected_events =
      static_cast<std::uint64_t>(kSteps) * 16 * kEventsPerServerStep;
  const bool events_ok = obs::bench_check(
      enabled.events == expected_events && obs::EventBus::global().dropped() == 0,
      "event_stream_throughput", "unexpected event count or silent drops");

  obs::BenchReport report("event_stream_throughput");
  auto& json = report.json();
  json.field("steps", kSteps);
  json.field("servers", 16);
  json.field("default_lanes", ThreadPool::default_lanes());
  json.field("disabled_seconds", disabled.seconds);
  json.field("enabled_seconds", enabled.seconds);
  json.field("throughput_ratio", ratio);
  json.field("min_ratio", kMinRatio);
  json.field("events_per_run", enabled.events);
  json.field("digests_match", digests_match);
  const bool artifacts_ok = write_sample_artifacts(json);
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write bench report\n");
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  return overhead_ok && perturbation_ok && events_ok && artifacts_ok ? 0 : 1;
}
