// Fig 6: the relation between core energy and the number of retired
// instructions. For each training workload (idle loop, prime,
// 462.libquantum, stress in two memory configurations) the bench sweeps
// execution intensity, samples (retired instructions, core energy) through
// perf + RAPL exactly as the paper's Perf-based collection does, prints the
// series, and fits a per-workload line.
//
// Paper headline: for every benchmark, energy is almost strictly linear in
// retired instructions, but the slope (gradient) differs per workload —
// which is why the model must include the miss-rate mix.
#include <cstdio>

#include "defense/trainer.h"
#include "obs/export.h"
#include "util/regression.h"
#include "workload/profiles.h"

using namespace cleaks;

int main() {
  std::printf("== Fig 6: core energy vs retired instructions ==\n\n");
  std::printf("workload,instructions,core_energy_j\n");

  struct FitRow {
    std::string name;
    double slope_nj = 0.0;
    double r2 = 0.0;
  };
  std::vector<FitRow> fits;

  for (const auto& profile : workload::training_set()) {
    kernel::Host host("fig6", hw::testbed_i7_6700(),
                      1000 + fnv1a64(profile.name) % 1000);
    host.set_tick_duration(100 * kMillisecond);
    defense::TrainerOptions options;
    options.duty_levels = {0.2, 0.4, 0.6, 0.8, 1.0};
    options.samples_per_level = 6;
    const auto samples =
        defense::collect_training_samples(host, {profile}, options);

    std::vector<std::vector<double>> features;
    std::vector<double> energy;
    for (const auto& sample : samples) {
      std::printf("%s,%.4e,%.3f\n", profile.name.c_str(),
                  sample.perf.instructions, sample.core_j);
      features.push_back({sample.perf.instructions, 1.0});
      energy.push_back(sample.core_j);
    }
    auto fit = fit_ols(features, energy);
    if (fit.is_ok()) {
      fits.push_back({profile.name, fit.value().coefficients[0] * 1e9,
                      fit.value().r2});
    }
  }

  std::printf("\nper-workload linear fit (energy vs instructions):\n");
  std::printf("  %-16s  slope(nJ/inst)  R^2\n", "workload");
  bool all_linear = true;
  double min_slope = 1e9;
  double max_slope = 0.0;
  for (const auto& fit : fits) {
    std::printf("  %-16s  %14.3f  %.4f\n", fit.name.c_str(), fit.slope_nj,
                fit.r2);
    all_linear = all_linear && fit.r2 > 0.95;
    min_slope = std::min(min_slope, fit.slope_nj);
    max_slope = std::max(max_slope, fit.slope_nj);
  }
  std::printf("\nsummary: all workloads linear (R^2 > 0.95): %s; "
              "slope spread %.2f-%.2f nJ/inst (mix-dependent gradient)\n",
              all_linear ? "YES" : "NO", min_slope, max_slope);
  std::printf(
      "paper: energy almost strictly linear per benchmark; gradients change "
      "with application type\n");

  obs::BenchReport report("fig6_core_energy_model");
  report.json().begin_array("fits");
  for (const auto& fit : fits) {
    report.json()
        .begin_object()
        .field("workload", fit.name)
        .field("slope_nj_per_inst", fit.slope_nj)
        .field("r2", fit.r2)
        .end_object();
  }
  report.json()
      .end_array()
      .field("all_linear", all_linear)
      .field("min_slope_nj", min_slope)
      .field("max_slope_nj", max_slope);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return all_linear && max_slope > min_slope * 1.2 ? 0 : 1;
}
